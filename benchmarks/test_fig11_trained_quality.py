"""Figure 11: downstream quality of models trained with compressed gradients.

Takes the Figure 10 training setups (uncompressed vs LLM.265 at 2.6 and
1.4 bits) and evaluates the resulting checkpoints on the commonsense
suites.  Paper result: LLM.265(1.4b) keeps >=95.2% and LLM.265(2.6b)
>=96.6% of the uncompressed model's accuracy.
"""

import numpy as np
import pytest

from conftest import print_table, scaled

from repro.distributed import Channel, CodecCompressor, DataParallelTrainer
from repro.evals import COMMONSENSE_SUITE, build_suite
from repro.evals.harness import average_accuracy, evaluate_suite
from repro.models.zoo import SPECS
from repro.nn.data import SyntheticCorpus
from repro.nn.transformer import GPT

STEPS = scaled(60, 15)


def _train(spec, corpus, compressor):
    model = GPT(spec.config, seed=0)
    trainer = DataParallelTrainer(
        model,
        num_workers=2,
        gradient_channel=Channel(compressor) if compressor else None,
        lr=3e-3,
    )
    trainer.train(corpus.batches(8, STEPS, seed=6), steps=STEPS)
    return model


def test_fig11_trained_model_quality(run_once):
    def experiment():
        spec = SPECS["pythia-160m-sim"]
        corpus = SyntheticCorpus(spec.corpus)
        tasks = build_suite(corpus, COMMONSENSE_SUITE[:4], num_items=scaled(25, 10))
        configs = {
            "uncompressed": None,
            "LLM.265 (2.6b)": CodecCompressor(2.6),
            "LLM.265 (1.4b)": CodecCompressor(1.4),
        }
        results = {}
        for label, compressor in configs.items():
            model = _train(spec, corpus, compressor)
            scores = evaluate_suite(model, tasks)
            results[label] = scores
        return results

    results = run_once(experiment)
    task_names = list(next(iter(results.values())).keys())
    rows = [
        (label, *(f"{scores[t]:.3f}" for t in task_names),
         f"{average_accuracy(scores):.3f}")
        for label, scores in results.items()
    ]
    print_table(
        "Figure 11: task accuracy of models trained with compressed gradients",
        ("config", *task_names, "avg"),
        rows,
    )

    base = average_accuracy(results["uncompressed"])
    # Paper: >=96.6% retention at 2.6 bits, >=95.2% at 1.4 bits.  Our
    # tiny runs are noisier, so assert a slightly looser floor.
    assert average_accuracy(results["LLM.265 (2.6b)"]) >= 0.90 * base
    assert average_accuracy(results["LLM.265 (1.4b)"]) >= 0.88 * base


def test_fig11_models_beat_chance(run_once):
    def experiment():
        spec = SPECS["pythia-160m-sim"]
        corpus = SyntheticCorpus(spec.corpus)
        tasks = build_suite(corpus, COMMONSENSE_SUITE[:2], num_items=scaled(20, 8))
        model = _train(spec, corpus, CodecCompressor(2.6))
        return evaluate_suite(model, tasks), tasks

    scores, tasks = run_once(experiment)
    for name, accuracy in scores.items():
        assert accuracy > tasks[name].chance_accuracy
