"""Figure 8: KV-cache and activation compression on LLaMA-3-70B (sim).

Grid of (KV bits, activation bits) configurations comparing RTN dynamic
quantization, rotation-based quantization (SpinQuant/QuaRot style), and
LLM.265.  Paper result: LLM.265 reaches 2.9-bit KV + 3.5-bit
activations with <2% accuracy drop and a small perplexity increase,
while 3-bit RTN KV quantization nearly destroys the model.
"""

import numpy as np
import pytest

from bench_helpers import fresh
from conftest import print_table, scaled

from repro.evals import build_suite
from repro.evals.harness import evaluate_suite
from repro.evals.tasks import COMMONSENSE_SUITE
from repro.quant.kvcache import codec_kv_hook, rotation_kv_hook, rtn_kv_hook
from repro.quant.rotation import rotate_quantize
from repro.quant.rtn import rtn_roundtrip
from repro.tensor.codec import TensorCodec

MODEL = "llama3-70b-sim"


def _activation_hook(method: str, bits: float, codec=None):
    if method == "rtn":
        return lambda x: rtn_roundtrip(x, int(bits), symmetric=False, group_size=128)
    if method == "rotation":
        return lambda x: rotate_quantize(x, int(bits), group_size=128, symmetric=False)
    if method == "llm265":
        qp_cache = {}

        def hook(x):
            key = x.shape
            if key in qp_cache:
                compressed = codec.encode(x, qp=qp_cache[key])
            else:
                compressed = codec.encode(x, bits_per_value=bits)
                qp_cache[key] = compressed.qp
            return codec.decode(compressed)

        return hook
    raise ValueError(method)


def test_fig08_kv_and_activation_compression(run_once):
    def experiment():
        base_model, corpus = fresh(MODEL)
        specs = [s for s in COMMONSENSE_SUITE if s.name == "piqa-sim"]
        tasks = build_suite(corpus, specs, num_items=scaled(35, 12))
        held_out = corpus.sample(scaled(24, 8), seed=777)
        boundaries = [1, 3]  # 4-way pipeline split of 6 blocks

        def measure(label, kv_hook=None, act_hook=None):
            model, _ = fresh(MODEL)
            if kv_hook is not None:
                model.set_kv_hook(kv_hook)
            if act_hook is not None:
                model.activation_hooks = {b: act_hook for b in boundaries}
            scores = evaluate_suite(model, tasks)
            ppl = model.perplexity(held_out)
            return label, ppl, scores["piqa-sim"]

        codec = TensorCodec(tile=128)
        results = [
            measure("BF16 baseline"),
            measure("RTN KV3", kv_hook=rtn_kv_hook(3)),
            measure("RTN KV4", kv_hook=rtn_kv_hook(4)),
            measure("RTN A4", act_hook=_activation_hook("rtn", 4)),
            measure("Rotation KV3", kv_hook=rotation_kv_hook(3)),
            measure("Rotation KV3+A4",
                    kv_hook=rotation_kv_hook(3),
                    act_hook=_activation_hook("rotation", 4)),
            measure("LLM.265 KV2.9", kv_hook=codec_kv_hook(codec, 2.9)),
            measure("LLM.265 A3.5", act_hook=_activation_hook("llm265", 3.5, codec)),
            measure("LLM.265 KV2.9+A3.5",
                    kv_hook=codec_kv_hook(codec, 2.9),
                    act_hook=_activation_hook("llm265", 3.5, codec)),
        ]
        return results

    results = run_once(experiment)
    rows = [(label, f"{ppl:.2f}", f"{acc:.3f}") for label, ppl, acc in results]
    print_table(
        "Figure 8: KV cache + activation compression (LLaMA-3-70B sim)",
        ("configuration", "perplexity", "PIQA-sim acc"),
        rows,
    )

    by_label = {label: (ppl, acc) for label, ppl, acc in results}
    base_ppl, base_acc = by_label["BF16 baseline"]
    ours_ppl, ours_acc = by_label["LLM.265 KV2.9+A3.5"]
    rtn3_ppl, rtn3_acc = by_label["RTN KV3"]

    # LLM.265 keeps accuracy within a couple points of the baseline...
    assert ours_acc >= base_acc - 0.08
    # ...with a bounded perplexity increase (paper: +7%)...
    assert ours_ppl <= base_ppl * 1.35
    # ...while plain 3-bit KV RTN hurts much more than LLM.265 at fewer bits.
    assert ours_ppl <= rtn3_ppl
    assert ours_acc >= rtn3_acc - 0.02
    # Activation-only LLM.265 beats activation-only RTN (paper: +5% vs +13%).
    assert by_label["LLM.265 A3.5"][0] <= by_label["RTN A4"][0] * 1.15
