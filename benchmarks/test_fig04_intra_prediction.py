"""Figure 4: a weight block through the H.265 intra pipeline.

Shows the four panels as numbers: original block energy, prediction
quality, residual energy, and the sparsity of the quantized DCT
coefficients of that residual.
"""

import numpy as np

from conftest import print_table

from repro.codec import intra
from repro.codec.quantizer import quantize
from repro.codec.transform import forward_dct2
from repro.models.synthetic_weights import weight_like
from repro.tensor.precision import quantize_to_uint8


def test_fig04_intra_prediction_anatomy(run_once):
    def experiment():
        weight = weight_like(64, 64, mean_strength=6.0, seed=1)
        frame = quantize_to_uint8(weight)[0].astype(np.float64)
        mask = np.zeros_like(frame, dtype=bool)
        mask[:16, :] = True  # context row above the target block
        y0, x0, n = 16, 16, 16
        top, left = intra.gather_references(frame, mask, y0, x0, n)
        block = frame[y0 : y0 + n, x0 : x0 + n]

        best = None
        for mode in range(intra.NUM_MODES):
            prediction = intra.predict(top, left, mode, n)
            energy = float(np.sum((block - prediction) ** 2))
            if best is None or energy < best[1]:
                best = (mode, energy, prediction)
        mode, residual_energy, prediction = best
        residual = block - prediction
        coeffs = forward_dct2(residual)
        levels = quantize(coeffs, qp=28)
        return block, mode, residual_energy, residual, levels

    block, mode, residual_energy, residual, levels = run_once(experiment)
    block_energy = float(np.sum((block - block.mean()) ** 2))
    sparsity = float(np.mean(levels == 0))
    rows = [
        ("(a) original block", f"{block_energy:.0f}", "-"),
        ("(b) intra prediction", f"mode {mode}", "-"),
        ("(c) residual", f"{residual_energy:.0f}",
         f"{100 * (1 - residual_energy / block_energy):.0f}% removed"),
        ("(d) quantized coefficients", f"{int(np.sum(levels != 0))} nonzero",
         f"{100 * sparsity:.0f}% zeros"),
    ]
    print_table(
        "Figure 4: intra prediction anatomy on a weight block",
        ("panel", "value", "note"),
        rows,
    )
    # Prediction removes most of the structured energy...
    assert residual_energy < 0.5 * block_energy
    # ...and the residual's coefficients are sparse and easy to code.
    assert sparsity > 0.5
