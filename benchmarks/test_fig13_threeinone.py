"""Figure 13: the three-in-one codec handles tensors, images, and video.

Two halves:

1. *Functional*: one coding engine (this repository's intra pipeline)
   processes all three input kinds -- a weight tensor through
   ``TensorCodec``, a still image through the AVC-Image-style path, and
   a multi-frame video with inter prediction enabled.
2. *Hardware model*: the area partitioning claims -- 80% of the
   three-in-one encoder is the shared pipeline, tensor work powers only
   the shared partition, and multimedia keeps static priority.
"""

import numpy as np
import pytest

from conftest import print_table, scaled

from repro.codec.decoder import decode_frames
from repro.codec.encoder import EncoderConfig, encode_frames
from repro.codec.image import decode_image, encode_image, image_psnr
from repro.hardware.threeinone import (
    SHARED_PIPELINE_FRACTION,
    THREE_IN_ONE_DEC,
    THREE_IN_ONE_ENC,
    InputKind,
    overhead_versus_tensor_only,
)
from repro.models.synthetic_weights import weight_like
from repro.tensor.codec import TensorCodec


def _moving_video(frames=4, size=64, seed=0):
    rng = np.random.default_rng(seed)
    base = np.clip(
        128 + 50 * np.sin(np.arange(size) / 7.0)[None, :] + rng.normal(0, 4, (size, size)),
        0,
        255,
    ).astype(np.uint8)
    return [np.roll(base, shift, axis=1) for shift in range(0, frames * 2, 2)]


def test_fig13_one_engine_three_inputs(run_once):
    def experiment():
        size = scaled(64, 48)
        rows = []

        # (1) tensor path: intra-only, MX-alignment front end.
        tensor = weight_like(size, size, seed=1)
        codec = TensorCodec(tile=size)
        compressed = codec.encode(tensor, bits_per_value=3.0)
        restored = codec.decode(compressed)
        tensor_ok = float(np.mean((restored - tensor) ** 2)) < np.var(tensor)
        rows.append(("tensor", f"{compressed.bits_per_value:.2f} bits/value",
                     "intra pipeline + alignment"))

        # (2) image path: AVC-Image style single intra frame.
        rng = np.random.default_rng(2)
        y, x = np.mgrid[0:size, 0:size]
        image = 120 + 60 * np.sin(x / 9.0) + 40 * np.cos(y / 13.0)
        image[size // 3 :, size // 2 :] += 50
        image = np.clip(image + rng.normal(0, 3, (size, size)), 0, 255).astype(
            np.uint8
        )
        blob = encode_image(image, qp=24)
        psnr = image_psnr(image, decode_image(blob))
        rows.append(("image", f"{psnr:.1f} dB @ {8 * len(blob) / image.size:.2f} bpp",
                     "intra pipeline only"))

        # (3) video path: inter prediction engaged, wins on motion.
        video = _moving_video(size=size)
        with_inter = encode_frames(video, EncoderConfig(qp=24, use_inter=True))
        without = encode_frames(video, EncoderConfig(qp=24, use_inter=False))
        decoded = decode_frames(with_inter.data)
        video_ok = len(decoded) == len(video)
        rows.append(
            (
                "video",
                f"{with_inter.bits_per_value:.2f} vs {without.bits_per_value:.2f} "
                "bits/px (inter vs intra)",
                "shared + video pipeline",
            )
        )
        return rows, tensor_ok, psnr, video_ok, with_inter, without

    rows, tensor_ok, psnr, video_ok, with_inter, without = run_once(experiment)
    print_table(
        "Figure 13: one engine, three input types",
        ("input", "result", "active blocks"),
        rows,
    )
    assert tensor_ok
    assert psnr > 28.0
    assert video_ok
    # Inter prediction earns its area on real video (unlike tensors).
    assert with_inter.bits_per_value < without.bits_per_value


def test_fig13_partitioning_model(run_once):
    def experiment():
        return {
            "shared_fraction": SHARED_PIPELINE_FRACTION,
            "video_overhead": overhead_versus_tensor_only(),
            "tensor_area": THREE_IN_ONE_ENC.active_area_mm2(InputKind.TENSOR),
            "video_area": THREE_IN_ONE_ENC.active_area_mm2(InputKind.VIDEO),
            "split": THREE_IN_ONE_ENC.partition(0.7),
        }

    model = run_once(experiment)
    rows = [
        ("shared pipeline fraction", f"{model['shared_fraction']:.0%}"),
        ("video/image support overhead", f"{model['video_overhead']:.0%}"),
        ("area active for tensors", f"{model['tensor_area']:.2f} mm^2"),
        ("area active for video", f"{model['video_area']:.2f} mm^2"),
        ("tensor share of shared pipeline", f"{model['split']['tensor_gbps']:.0f} Gb/s"),
    ]
    print_table("Figure 13: three-in-one partitioning", ("quantity", "value"), rows)
    assert model["shared_fraction"] == 0.80
    assert model["tensor_area"] < model["video_area"]
    # Decoder is cheaper than the encoder, as in Table 3.
    assert (
        THREE_IN_ONE_DEC.component.area_mm2 < THREE_IN_ONE_ENC.component.area_mm2
    )
