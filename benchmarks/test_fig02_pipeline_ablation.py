"""Figure 2(b): bits/value as the encoding pipeline activates stage by stage.

Paper result: 8.0 raw -> ~7.6 with entropy coding -> ~2.6 with the full
intra pipeline under an MSE budget, and enabling inter-frame prediction
does *not* reduce the rate.
"""

import numpy as np

from conftest import print_table, scaled

from repro.codec.pipeline import PipelineStage, run_pipeline_ablation
from repro.models.synthetic_weights import weight_like
from repro.tensor.precision import quantize_to_uint8


def _frames():
    size = scaled(128, 64)
    return [
        quantize_to_uint8(weight_like(size, size, mean_strength=6.0, seed=s))[0]
        for s in range(3)
    ]


def test_fig02_pipeline_ablation(run_once):
    results = run_once(run_pipeline_ablation, _frames(), 4.0)
    rows = [
        (r.stage.value, r.stage.name, f"{r.bits_per_value:.2f}", f"{r.pixel_mse:.2f}")
        for r in results
    ]
    print_table(
        "Figure 2(b): incremental pipeline activation (MSE budget 4.0)",
        ("step", "stage", "bits/value", "pixel MSE"),
        rows,
    )

    bits = {r.stage: r.bits_per_value for r in results}
    assert bits[PipelineStage.QUANTIZE_ONLY] == 8.0
    assert bits[PipelineStage.ENTROPY] < 8.0  # paper: -0.4 bits
    assert bits[PipelineStage.TRANSFORM] < bits[PipelineStage.ENTROPY]
    assert bits[PipelineStage.PARTITION] <= bits[PipelineStage.TRANSFORM]
    assert bits[PipelineStage.INTRA] <= bits[PipelineStage.PARTITION] + 0.05
    # Full intra pipeline lands in the paper's 2-3.5 bit range.
    assert bits[PipelineStage.INTRA] < 3.5
    # Inter-frame prediction gives no benefit on tensors.
    assert bits[PipelineStage.INTER] >= bits[PipelineStage.INTRA] - 0.05
