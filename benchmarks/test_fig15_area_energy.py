"""Figure 15: communication-system area and energy per codec.

(a) total codec+NIC area to sustain 100 Gb/s effective bandwidth --
the NIC shrinks with each codec's *measured* compression ratio (taken
from our software implementations on gradient tensors), so better
information efficiency shows up as silicon savings.
(b) energy to communicate one epoch of Pythia-125M gradients.

Paper result: the three-in-one codec wins both, mostly by shrinking the
NIC, the dominant area/power term.
"""

import numpy as np
import pytest

from conftest import print_table, scaled

from repro.codec.entropy.bytecoder import byte_arith_encode
from repro.codec.entropy.deflate import deflate_compress
from repro.codec.entropy.huffman import huffman_compress
from repro.codec.entropy.lz4 import lz4_compress
from repro.hardware.nic import communication_system_area, communication_system_energy
from repro.models.synthetic_weights import gradient_like
from repro.models.zoo import parameter_bytes
from repro.quant.mxfp import MXFP_FORMATS, mx_pack_bytes
from repro.tensor.codec import TensorCodec

#: One epoch of the 5M-sample Pile subset at batch 16 -> steps/epoch.
STEPS_PER_EPOCH = 5_000_000 // (16 * 8)

COMPRESSORS = {
    "huffman": ("H.", huffman_compress),
    "deflate": ("D.", deflate_compress),
    "lz4": ("L.", lz4_compress),
    "cabac": ("C.", byte_arith_encode),
}


def _measured_ratios():
    """Compression ratio (vs FP16) per hardware-codec family."""
    size = scaled(128, 64)
    grad = gradient_like(size, size, seed=4).astype(np.float64)
    raw_bits = 16.0 * grad.size
    ratios = {}
    packed = mx_pack_bytes(grad, MXFP_FORMATS["mxfp6"])
    for name, (_, compress) in COMPRESSORS.items():
        ratios[name] = raw_bits / (8.0 * len(compress(packed)))
    codec = TensorCodec(tile=256)
    compressed = codec.encode(grad, bits_per_value=3.5)
    ratios["three-in-one"] = 16.0 / compressed.bits_per_value
    return ratios


def test_fig15a_total_area(run_once):
    ratios = run_once(_measured_ratios)
    rows = []
    sizings = {}
    for codec, ratio in [(None, 1.0)] + sorted(ratios.items()):
        sizing = communication_system_area(codec, ratio)
        label = codec or "uncompressed"
        sizings[label] = sizing["total_mm2"]
        rows.append(
            (
                label,
                f"{ratio:.2f}x",
                f"{sizing['codec_mm2']:.2f}",
                f"{sizing['nic_mm2']:.1f}",
                f"{sizing['total_mm2']:.1f}",
            )
        )
    print_table(
        "Figure 15(a): codec+NIC area for 100 Gb/s effective bandwidth",
        ("codec", "measured ratio", "codec mm^2", "NIC mm^2", "total mm^2"),
        rows,
    )
    # The three-in-one codec yields the smallest communication system.
    best = min(sizings, key=sizings.get)
    assert best == "three-in-one", sizings
    assert sizings["three-in-one"] < sizings["uncompressed"] / 2


def test_fig15b_epoch_energy(run_once):
    def experiment():
        ratios = _measured_ratios()
        payload = parameter_bytes("pythia-125m-sim") * STEPS_PER_EPOCH
        rows = []
        energies = {}
        for codec, ratio in [(None, 1.0)] + sorted(ratios.items()):
            label = codec or "uncompressed"
            joules = communication_system_energy(codec, ratio, payload)
            energies[label] = joules
            rows.append((label, f"{ratio:.2f}x", f"{joules:.1f}"))
        return rows, energies

    rows, energies = run_once(experiment)
    print_table(
        "Figure 15(b): energy for one epoch of Pythia-125M (sim) gradients",
        ("codec", "ratio", "energy J"),
        rows,
    )
    assert min(energies, key=energies.get) == "three-in-one"
    assert energies["three-in-one"] < energies["uncompressed"] / 2
