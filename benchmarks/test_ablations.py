"""Design-choice ablations (beyond the paper's figures).

DESIGN.md calls out four encoder design choices; each gets an ablation
so the defaults are justified by measurement rather than folklore:

1. quantizer deadzone on/off,
2. quad-tree partitioning vs fixed blocks,
3. coarse+refine mode search vs coarse-only,
4. QP dithering granularity (fractional-rate smoothness).
"""

import numpy as np
import pytest

from conftest import print_table, scaled

from repro.codec.encoder import EncoderConfig, encode_frames
from repro.codec.profiles import H265_PROFILE, CodecProfile
from repro.models.synthetic_weights import weight_like
from repro.tensor.precision import quantize_to_uint8


@pytest.fixture(scope="module")
def frame():
    size = scaled(128, 64)
    return quantize_to_uint8(weight_like(size, size, mean_strength=6.0, seed=7))[0]


def _rd_point(frame, config):
    result = encode_frames([frame], config)
    return result.bits_per_value, result.mse


def test_ablation_deadzone(run_once, frame):
    def experiment():
        rows = []
        for deadzone in (0.0, 0.15, 0.3):
            profile = CodecProfile(
                **{**H265_PROFILE.__dict__, "name": f"dz{deadzone}", "deadzone": deadzone}
            )
            bits, mse = _rd_point(frame, EncoderConfig(profile=profile, qp=24))
            rows.append((f"{deadzone:.2f}", f"{bits:.3f}", f"{mse:.2f}"))
        return rows

    rows = run_once(experiment)
    print_table("Ablation: quantizer deadzone at QP 24", ("deadzone", "bits", "MSE"), rows)
    bits = [float(r[1]) for r in rows]
    # A wider zero bin always trims rate (at slightly higher distortion).
    assert bits[0] >= bits[1] >= bits[2]


def test_ablation_partitioning(run_once, frame):
    def experiment():
        adaptive = _rd_point(frame, EncoderConfig(qp=24, use_partition=True))
        rows = [("quad-tree", f"{adaptive[0]:.3f}", f"{adaptive[1]:.2f}")]
        fixed_points = {}
        for cu in (8, 16, 32):
            point = _rd_point(
                frame, EncoderConfig(qp=24, use_partition=False, fixed_cu_size=cu)
            )
            fixed_points[cu] = point
            rows.append((f"fixed {cu}x{cu}", f"{point[0]:.3f}", f"{point[1]:.2f}"))
        return rows, adaptive, fixed_points

    rows, adaptive, fixed_points = run_once(experiment)
    print_table("Ablation: CU partitioning at QP 24", ("scheme", "bits", "MSE"), rows)
    # The quad-tree should match or beat every fixed grid on rate at
    # comparable distortion.
    for cu, (bits, mse) in fixed_points.items():
        assert adaptive[0] <= bits * 1.05, f"fixed {cu} beat the quad-tree on rate"


def test_ablation_mode_search(run_once, frame):
    def experiment():
        full = _rd_point(frame, EncoderConfig(qp=24))
        no_refine_profile = CodecProfile(
            **{**H265_PROFILE.__dict__, "name": "norefine", "angular_refine_radius": 0}
        )
        coarse = _rd_point(frame, EncoderConfig(profile=no_refine_profile, qp=24))
        dc_only_profile = CodecProfile(
            **{
                **H265_PROFILE.__dict__,
                "name": "dconly",
                "angular_modes": (26,),
                "coarse_angular_modes": (26,),
                "angular_refine_radius": 0,
            }
        )
        minimal = _rd_point(frame, EncoderConfig(profile=dc_only_profile, qp=24))
        return full, coarse, minimal

    full, coarse, minimal = run_once(experiment)
    rows = [
        ("coarse+refine (default)", f"{full[0]:.3f}", f"{full[1]:.2f}"),
        ("coarse only", f"{coarse[0]:.3f}", f"{coarse[1]:.2f}"),
        ("planar/DC/vertical only", f"{minimal[0]:.3f}", f"{minimal[1]:.2f}"),
    ]
    print_table("Ablation: intra mode search breadth at QP 24", ("search", "bits", "MSE"), rows)
    # More candidate modes never hurt the RD outcome materially.
    assert full[0] <= coarse[0] * 1.02
    assert full[0] <= minimal[0] * 1.05


def test_ablation_alignment_unit(run_once):
    """Section 7 alignment unit: min-max vs MX micro-scaling front-end."""
    from repro.tensor.codec import TensorCodec

    def experiment():
        rng = np.random.default_rng(11)
        size = scaled(96, 64)
        smooth = weight_like(size, size, seed=11).astype(np.float64)
        spiky = rng.normal(0, 0.01, (size, size))
        spiky[rng.random((size, size)) < 1e-3] = rng.normal(0, 5.0)
        rows = []
        results = {}
        for name, tensor in (("weights", smooth), ("extreme-outliers", spiky)):
            for mode in ("minmax", "mx"):
                codec = TensorCodec(tile=size, alignment=mode)
                compressed = codec.encode(tensor, qp=12)
                restored = codec.decode(compressed)
                mse = float(np.mean((restored - tensor) ** 2))
                results[(name, mode)] = (compressed.bits_per_value, mse)
                rows.append(
                    (name, mode, f"{compressed.bits_per_value:.2f}", f"{mse:.2e}")
                )
        return rows, results

    rows, results = run_once(experiment)
    print_table(
        "Ablation: alignment unit (min-max vs MX micro-scaling)",
        ("tensor", "alignment", "bits", "MSE"),
        rows,
    )
    # On extreme outliers MX keeps the clean mass accurate; min-max
    # spends its whole 8-bit range covering the spike.
    assert results[("extreme-outliers", "mx")][1] < results[("extreme-outliers", "minmax")][1]


def test_ablation_qp_dither(run_once, frame):
    def experiment():
        qps = np.arange(22.0, 24.01, 0.25)
        return [(qp, encode_frames([frame], EncoderConfig(qp=float(qp))).bits_per_value) for qp in qps]

    points = run_once(experiment)
    rows = [(f"{qp:.2f}", f"{bits:.3f}") for qp, bits in points]
    print_table("Ablation: fractional QP dithering", ("QP", "bits"), rows)
    bits = [b for _, b in points]
    # Rate responds monotonically (within noise) and in small steps --
    # this is what makes fractional bitrate targets reachable.
    assert bits[-1] <= bits[0]
    deltas = np.abs(np.diff(bits))
    assert deltas.max() < 0.25
