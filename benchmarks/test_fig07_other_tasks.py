"""Figure 7: LLM.265 on non-LLM models and tasks.

Four proxies for the paper's panels: (a) sentiment analysis,
(b) embedding retrieval, (c) VQA, (d) image classification.  At each
bit budget LLM.265 should match or beat RTN and NF4 on accuracy.
"""

import numpy as np
import pytest

from conftest import print_table, scaled

from repro.evals.extra_tasks import (
    image_classification_task,
    retrieval_task,
    sentiment_task,
    vqa_task,
)
from repro.quant.nf4 import nf_quantize
from repro.quant.rtn import rtn_roundtrip
from repro.tensor.codec import TensorCodec

BITS = 3.0


def _compress_with(bundle_factory, method):
    bundle = bundle_factory()
    if method == "fp16":
        pass
    elif method == "llm265":
        codec = TensorCodec(tile=128)
        names = sorted(bundle.model.weight_matrices())
        restored = {
            n: codec.decode(
                codec.encode(bundle.model.weight_matrices()[n], bits_per_value=BITS)
            )
            for n in names
        }
        bundle.model.apply_weight_transform(lambda n, w: restored[n])
    elif method == "rtn":
        bundle.model.apply_weight_transform(
            lambda n, w: rtn_roundtrip(w, int(BITS), symmetric=True, group_size=128)
        )
    elif method == "nf":
        bundle.model.apply_weight_transform(lambda n, w: nf_quantize(w, int(BITS)))
    else:
        raise ValueError(method)
    return bundle.evaluate()


TASKS = {
    "sentiment (T5 proxy)": sentiment_task,
    "retrieval (T5 proxy)": retrieval_task,
    "vqa (Qwen-VL proxy)": vqa_task,
    "imagenet (ViT proxy)": image_classification_task,
}


def test_fig07_other_tasks(run_once):
    def experiment():
        table = {}
        for task_name, factory in TASKS.items():
            table[task_name] = {
                method: _compress_with(factory, method)
                for method in ("fp16", "llm265", "rtn", "nf")
            }
        return table

    table = run_once(experiment)
    rows = [
        (
            task,
            f"{scores['fp16']:.3f}",
            f"{scores['llm265']:.3f}",
            f"{scores['rtn']:.3f}",
            f"{scores['nf']:.3f}",
        )
        for task, scores in table.items()
    ]
    print_table(
        f"Figure 7: four additional tasks at {BITS:.0f}-bit weights",
        ("task", "fp16", "LLM.265", "RTN-128G", f"NF{int(BITS)}"),
        rows,
    )

    for task, scores in table.items():
        # LLM.265 keeps most of the uncompressed accuracy...
        assert scores["llm265"] >= scores["fp16"] - 0.15, task
        # ...and is at least on par with the quantization baselines.
        assert scores["llm265"] >= min(scores["rtn"], scores["nf"]) - 0.05, task
