"""Figure 9: pipeline-parallel training with compressed communication.

Pythia-1.4B (sim) across 4 stages.  Configurations, as in the paper:
uncompressed; LLM.265(A) = 3.5-bit activations; LLM.265(A)+GQ = naive
8-bit RTN on activation gradients; LLM.265(A+G) = residual-compensated
gradient compression with the two-stage schedule.

Paper result: activation compression cuts traffic 78% without hurting
convergence (it even helps); naive gradient quantization diverges from
the uncompressed curve; residual compensation fixes it at ~10.1 bits
average.
"""

import numpy as np
import pytest

from conftest import print_table, scaled

from repro.distributed import Channel, CodecCompressor, PipelineParallelTrainer, ResidualCompressor, RTNCompressor
from repro.models.zoo import SPECS
from repro.nn.data import SyntheticCorpus
from repro.nn.transformer import GPT
from repro.tensor.codec import TensorCodec
from repro.tensor.residual import ResidualGradientCompressor

STEPS = scaled(40, 12)


def _train(label, activation, gradient, spec, corpus, steps=STEPS):
    model = GPT(spec.config, seed=0)
    trainer = PipelineParallelTrainer(
        model,
        num_stages=4,
        activation_channel=Channel(activation),
        gradient_channel=Channel(gradient),
        micro_batches=2,
    )
    history = trainer.train(corpus.batches(8, steps, seed=3), steps=steps)
    val_ppl = model.perplexity(corpus.sample(16, seed=901))
    return {
        "label": label,
        "losses": [h.loss for h in history],
        "val_ppl": val_ppl,
        "act_bits": trainer.activation_channel.average_bits_per_value,
        "grad_bits": trainer.gradient_channel.average_bits_per_value,
    }


def test_fig09_pipeline_training(run_once):
    def experiment():
        spec = SPECS["pythia-1.4b-sim"]
        corpus = SyntheticCorpus(spec.corpus)
        codec = TensorCodec(tile=128)
        return [
            _train("uncompressed", None, None, spec, corpus),
            _train("LLM.265(A)", CodecCompressor(3.5), None, spec, corpus),
            _train(
                "LLM.265(A)+GQ",
                CodecCompressor(3.5),
                RTNCompressor(8, group_size=128),
                spec,
                corpus,
            ),
            _train(
                "LLM.265(A+G)",
                CodecCompressor(3.5),
                ResidualCompressor(
                    ResidualGradientCompressor(codec, switch_step=STEPS // 2)
                ),
                spec,
                corpus,
            ),
        ]

    runs = run_once(experiment)
    rows = [
        (
            r["label"],
            f"{r['losses'][0]:.3f}",
            f"{np.mean(r['losses'][-5:]):.3f}",
            f"{r['val_ppl']:.2f}",
            f"{r['act_bits']:.2f}",
            f"{r['grad_bits']:.2f}",
        )
        for r in runs
    ]
    print_table(
        f"Figure 9: pipeline-parallel training ({STEPS} steps, 4 stages)",
        ("config", "first loss", "final loss", "val ppl", "act bits", "grad bits"),
        rows,
    )

    by_label = {r["label"]: r for r in runs}
    base = by_label["uncompressed"]
    act = by_label["LLM.265(A)"]
    residual = by_label["LLM.265(A+G)"]

    # Everyone learns.
    for r in runs:
        assert np.mean(r["losses"][-5:]) < r["losses"][0] - 0.3, r["label"]
    # Activation compression cuts traffic ~78% (16 -> 3.5 bits)...
    assert act["act_bits"] < 4.0
    # ...without hurting convergence materially (paper: it even helps).
    assert np.mean(act["losses"][-5:]) <= np.mean(base["losses"][-5:]) + 0.25
    # Residual-compensated gradients stay close to uncompressed quality
    # at well under 16 bits.
    assert residual["grad_bits"] < 13.0
    assert residual["val_ppl"] <= base["val_ppl"] * 1.4
