"""Component throughput microbenchmarks (the harness's timing side).

Unlike the per-figure experiments (which run once), these use
pytest-benchmark's repeated timing to characterise the software
substrate: DCT, intra prediction, the arithmetic coder, and the
end-to-end tensor codec.  Useful for spotting performance regressions
in the codec core.
"""

import numpy as np
import pytest

from repro.codec import intra
from repro.codec.decoder import decode_frames
from repro.codec.encoder import EncoderConfig, encode_frames
from repro.codec.entropy.arithmetic import BinaryDecoder, BinaryEncoder, ContextSet
from repro.codec.transform import forward_dct2_batch, inverse_dct2_batch
from repro.models.synthetic_weights import weight_like
from repro.tensor.codec import TensorCodec
from repro.tensor.precision import quantize_to_uint8

rng = np.random.default_rng(0)


def test_throughput_dct_batch(benchmark):
    blocks = rng.normal(0, 10, (256, 8, 8))
    result = benchmark(forward_dct2_batch, blocks)
    assert result.shape == blocks.shape


def test_throughput_idct_batch(benchmark):
    coeffs = rng.normal(0, 10, (256, 8, 8))
    result = benchmark(inverse_dct2_batch, coeffs)
    assert result.shape == coeffs.shape


def test_throughput_intra_prediction(benchmark):
    frame = rng.uniform(0, 255, (64, 64))
    mask = np.ones((64, 64), dtype=bool)
    top, left = intra.gather_references(frame, mask, 16, 16, 16)

    def predict_all():
        return intra.predict_batch(top, left, list(range(35)), 16)

    result = benchmark(predict_all)
    assert result.shape == (35, 16, 16)


def test_throughput_arithmetic_coder(benchmark):
    bits = (rng.random(20_000) < 0.2).astype(int).tolist()

    def roundtrip():
        enc = BinaryEncoder()
        ctx = ContextSet(4)
        for i, bit in enumerate(bits):
            enc.encode_bit(ctx, i & 3, bit)
        blob = enc.finish()
        dec = BinaryDecoder(blob)
        ctx2 = ContextSet(4)
        for i in range(len(bits)):
            dec.decode_bit(ctx2, i & 3)
        return blob

    blob = benchmark(roundtrip)
    assert len(blob) * 8 < len(bits)  # skewed source compresses


def test_throughput_frame_encode(benchmark):
    frame = quantize_to_uint8(weight_like(64, 64, seed=1))[0]
    result = benchmark(encode_frames, [frame], EncoderConfig(qp=24))
    assert result.bits_per_value > 0


def test_throughput_frame_decode(benchmark):
    frame = quantize_to_uint8(weight_like(64, 64, seed=2))[0]
    stream = encode_frames([frame], EncoderConfig(qp=24)).data
    frames = benchmark(decode_frames, stream)
    assert frames[0].shape == (64, 64)


def test_throughput_tensor_codec_roundtrip(benchmark):
    codec = TensorCodec(tile=64)
    tensor = weight_like(64, 64, seed=3)

    def roundtrip():
        return codec.decode(codec.encode(tensor, qp=24.0))

    restored = benchmark(roundtrip)
    assert restored.shape == tensor.shape
