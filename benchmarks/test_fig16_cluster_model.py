"""Figure 16: cluster-level impact of communication compression.

(a) Pareto frontiers of area budget vs normalized training performance
for uncompressed / NVENC / three-in-one scenarios over ~2000 hardware
configurations.  (b) energy-efficiency gain of compression as the model
scales.

Paper result: compression dominates the frontier (1.7x at 50k mm^2 in
the paper's calibration) and the energy win grows with model size.

Known divergence (documented in EXPERIMENTS.md): under our model the
NVENC scenario falls back to raw transmission on links faster than its
1100 MB/s engine, so its frontier ties the uncompressed one instead of
sitting between the curves.
"""

import numpy as np
import pytest

from conftest import print_table

from repro.hardware.cluster import (
    NVENC_OPTION,
    THREE_IN_ONE_OPTION,
    UNCOMPRESSED,
    Workload,
    energy_efficiency_vs_model_size,
    pareto_frontier,
    performance_at_budget,
    sweep,
)

BUDGETS = (20_000, 50_000, 100_000, 200_000)


def test_fig16a_pareto_frontiers(run_once):
    def experiment():
        workload = Workload()
        frontiers = {}
        config_count = 0
        for option in (UNCOMPRESSED, NVENC_OPTION, THREE_IN_ONE_OPTION):
            points = sweep(workload, option)
            config_count += len(points)
            frontiers[option.name] = pareto_frontier(points)
        return frontiers, config_count

    frontiers, config_count = run_once(experiment)
    rows = []
    table = {}
    for budget in BUDGETS:
        row = [f"{budget:,}"]
        for name, frontier in frontiers.items():
            point = performance_at_budget(frontier, budget)
            table[(name, budget)] = point.tokens_per_s if point else 0.0
            row.append(f"{point.tokens_per_s:,.0f}" if point else "-")
        rows.append(tuple(row))
    print_table(
        f"Figure 16(a): tokens/s at area budget ({config_count} configs swept)",
        ("budget mm^2", *frontiers.keys()),
        rows,
    )

    assert config_count >= 500  # the paper sweeps >2000; we cover the space
    for budget in BUDGETS:
        base = table[("uncompressed", budget)]
        ours = table[("three-in-one", budget)]
        # Compression never loses and wins visibly at large budgets.
        assert ours >= base
    small_gain = table[("three-in-one", BUDGETS[0])] / table[("uncompressed", BUDGETS[0])]
    large_gain = table[("three-in-one", BUDGETS[-1])] / table[("uncompressed", BUDGETS[-1])]
    assert large_gain > small_gain
    assert large_gain > 1.15


def test_fig16b_energy_vs_model_size(run_once):
    sizes = (1e9, 7e9, 70e9, 175e9, 700e9)
    results = run_once(energy_efficiency_vs_model_size, sizes, THREE_IN_ONE_OPTION)
    rows = [
        (
            f"{params / 1e9:.0f}B",
            f"{entry['gain']:.2f}x",
            f"{entry['comm_fraction_uncompressed']:.2f}",
            f"{entry['comm_fraction_compressed']:.2f}",
        )
        for params, entry in results.items()
    ]
    print_table(
        "Figure 16(b): energy-efficiency gain of compression vs model size",
        ("model", "tokens/J gain", "comm frac (raw)", "comm frac (codec)"),
        rows,
    )

    gains = [entry["gain"] for entry in results.values()]
    # Compression always helps and helps more at scale.
    assert all(g > 1.0 for g in gains)
    assert gains[-1] > gains[0]
    # Communication's share of time grows with the model...
    fracs = [entry["comm_fraction_uncompressed"] for entry in results.values()]
    assert fracs[-1] > fracs[0]
    # ...and compression shrinks it at every size.
    for entry in results.values():
        assert entry["comm_fraction_compressed"] < entry["comm_fraction_uncompressed"]
