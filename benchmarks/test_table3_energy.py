"""Table 3: energy for communication vs compression.

Reproduces the table verbatim from the calibrated component catalog and
re-derives the paper's headline arithmetic: the three-in-one pair is
31.7x cheaper per bit than NCCL transfer, and a 5x compression ratio
yields a 4.32x end-to-end energy win.
"""

import pytest

from conftest import print_table

from repro.hardware.components import CODEC_COMPONENTS
from repro.hardware.energy import (
    NCCL_PJ_PER_BIT,
    compression_energy_ratio,
    compression_vs_transfer_ratio,
)


def test_table3_energy(run_once):
    def experiment():
        rows = [("NCCL End to End", "-", "-", f"{NCCL_PJ_PER_BIT:.0f}")]
        for key in (
            "h264-enc",
            "h264-dec",
            "h265-enc",
            "h265-dec",
            "three-in-one-enc",
            "three-in-one-dec",
        ):
            component = CODEC_COMPONENTS[key]
            rows.append(
                (
                    component.name,
                    f"{component.power_w:.2f}",
                    f"{component.area_mm2:.2f}",
                    f"{component.energy_pj_per_bit:.1f}",
                )
            )
        return rows

    rows = run_once(experiment)
    print_table(
        "Table 3: power / area / energy-per-bit (100 Gb/s aggregates)",
        ("component", "power W", "area mm^2", "energy pJ/bit"),
        rows,
    )

    # Paper's verbatim values.
    assert CODEC_COMPONENTS["h264-enc"].energy_pj_per_bit == 167.8
    assert CODEC_COMPONENTS["h265-enc"].energy_pj_per_bit == 1707.5
    assert CODEC_COMPONENTS["three-in-one-enc"].energy_pj_per_bit == 97.8
    assert CODEC_COMPONENTS["three-in-one-dec"].energy_pj_per_bit == 63.5
    # The three-in-one codec is cheaper than every H.264/H.265 block.
    three = CODEC_COMPONENTS["three-in-one-enc"]
    assert three.power_w < CODEC_COMPONENTS["h264-enc"].power_w
    assert three.area_mm2 < CODEC_COMPONENTS["h264-enc"].area_mm2

    # Section 7.3 arithmetic.
    assert compression_vs_transfer_ratio("three-in-one") == pytest.approx(31.7, abs=0.1)
    assert compression_energy_ratio(5.0) == pytest.approx(4.32, abs=0.01)
