"""Section 4.2 memory arithmetic: LLaMA-3-70B on four 8 GB devices.

Paper numbers: weights 5.5x smaller (~25 GB), a 128k KV cache shrinks
from 40 GB to 7.2 GB at 2.9 bits, and a 4-stage pipeline needs ~6.3 GB
of weights + ~1.8 GB of cache per device ~= 8 GB.
"""

import pytest

from conftest import print_table

from repro.analysis.memory import (
    LLAMA3_70B,
    kv_cache_bytes,
    paper_deployment_table,
    per_device_memory,
    weight_bytes,
)


def test_sec4_deployment_table(run_once):
    table = run_once(paper_deployment_table)
    rows = [(key, f"{value:.1f}") for key, value in table.items()]
    print_table(
        "Section 4.2: LLaMA-3-70B deployment memory (GB)",
        ("quantity", "GB"),
        rows,
    )

    # Weights: 16 -> 2.9 bits is the paper's 5.5x.
    assert table["weights_fp16_gb"] / table["weights_compressed_gb"] == pytest.approx(
        16.0 / 2.9, rel=1e-6
    )
    assert table["weights_compressed_gb"] == pytest.approx(25.6, abs=1.0)
    # KV cache at 128k: ~40 GB FP16 -> ~7.2-7.8 GB at 2.9 bits.
    assert table["kv_fp16_gb"] == pytest.approx(40.0, abs=4.0)
    assert table["kv_compressed_gb"] == pytest.approx(7.2, abs=0.8)
    # Per device: about 8 GB.
    assert table["per_device_gb"] == pytest.approx(8.0, abs=0.6)


def test_sec4_component_formulas(run_once):
    def experiment():
        return (
            weight_bytes(LLAMA3_70B, 16.0),
            kv_cache_bytes(LLAMA3_70B, 128 * 1024, 16.0),
            per_device_memory(LLAMA3_70B, 4, 128 * 1024, 2.9, 2.9),
        )

    weights, cache, per_device = run_once(experiment)
    assert weights == pytest.approx(141.2e9, rel=0.01)
    # Grouped-query attention: 8 KV heads of 128 dims over 80 layers.
    assert cache == pytest.approx(
        2 * 80 * 8 * 128 * 128 * 1024 * 2, rel=1e-9
    )
    assert per_device["weights_bytes"] == pytest.approx(weights * 2.9 / 16 / 4)
    with pytest.raises(ValueError):
        per_device_memory(LLAMA3_70B, 0, 1, 2.9, 2.9)
    with pytest.raises(ValueError):
        weight_bytes(LLAMA3_70B, 0)
