"""Figure 3: transform coding mitigates outliers.

(a)->(b): a normal distribution with tail outliers loses its outliers
after the DCT.  (c)->(d): a single value of 128 is amortised across the
whole block's coefficients.
"""

import numpy as np

from conftest import print_table

from repro.codec.transform import forward_dct2
from repro.quant.rotation import incoherence


def test_fig03_distribution_outliers(run_once):
    rng = np.random.default_rng(0)

    def experiment():
        values = rng.normal(0, 1, (64, 64))
        mask = rng.random((64, 64)) < 0.003
        values[mask] = rng.normal(0, 25, int(mask.sum()))  # tail outliers
        coeffs = forward_dct2(values)
        return values, coeffs

    values, coeffs = run_once(experiment)
    rows = [
        ("pixel domain (a)", f"{np.max(np.abs(values)):.1f}",
         f"{np.std(values):.2f}", f"{incoherence(values):.2f}"),
        ("DCT domain (b)", f"{np.max(np.abs(coeffs)):.1f}",
         f"{np.std(coeffs):.2f}", f"{incoherence(coeffs):.2f}"),
    ]
    print_table(
        "Figure 3(a-b): outlier mitigation by the DCT",
        ("domain", "max |value|", "std", "incoherence"),
        rows,
    )
    # The transform removes outliers: max/std collapses toward Gaussian.
    assert np.max(np.abs(coeffs)) < np.max(np.abs(values)) / 2
    assert incoherence(coeffs) < incoherence(values)
    # Energy is preserved exactly (orthonormal basis).
    assert np.allclose(np.sum(coeffs**2), np.sum(values**2))


def test_fig03_single_outlier_block(run_once):
    block = np.zeros((8, 8))
    block[3, 4] = 128.0
    coeffs = run_once(forward_dct2, block)
    rows = [
        ("pixel block (c)", "128.0", "1"),
        ("DCT block (d)", f"{np.max(np.abs(coeffs)):.1f}",
         str(int(np.sum(np.abs(coeffs) > 1e-9)))),
    ]
    print_table(
        "Figure 3(c-d): one 128-valued outlier spread across coefficients",
        ("domain", "max |value|", "values carrying energy"),
        rows,
    )
    assert np.max(np.abs(coeffs)) < 128.0 / 3
    assert np.sum(np.abs(coeffs) > 1e-9) > 32
