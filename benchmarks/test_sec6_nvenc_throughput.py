"""Section 6.1: NVENC/NVDEC throughput ceilings.

Models the paper's measurements (1100 MB/s encode, 1300 MB/s decode)
and their consequence: on any link faster than ~9 Gb/s the *engine*,
not the wire, caps the end-to-end bandwidth.  Also measures this
repository's software codec throughput for context.
"""

import time

import numpy as np
import pytest

from conftest import print_table, scaled

from repro.codec.decoder import decode_frames
from repro.codec.encoder import EncoderConfig, encode_frames
from repro.gpu.engines import NVDEC, NVENC, communication_speedup, effective_link_bandwidth
from repro.models.synthetic_weights import weight_like
from repro.tensor.precision import quantize_to_uint8


def test_sec6_engine_model(run_once):
    def experiment():
        rows = []
        for link_gbps in (1.0, 8.8, 25.0, 100.0):
            bandwidth = effective_link_bandwidth(link_gbps / 8.0, 16.0 / 3.5)
            rows.append(
                (
                    f"{link_gbps:.1f} Gb/s",
                    f"{bandwidth:.0f} MB/s",
                    f"{communication_speedup(link_gbps / 8.0, 16.0 / 3.5):.2f}x",
                )
            )
        return rows

    rows = run_once(experiment)
    print_table(
        "Section 6.1: end-to-end bandwidth with NVENC/NVDEC inline",
        ("link", "effective payload", "speedup vs raw"),
        rows,
    )
    # The 1100 MB/s encoder ceiling binds on fast links.
    assert effective_link_bandwidth(12.5, 4.57) == pytest.approx(
        NVENC.throughput_mb_s
    )
    assert NVDEC.throughput_mb_s > NVENC.throughput_mb_s


def test_sec6_software_codec_throughput(run_once):
    """Our pure-Python codec's throughput, for scale context."""

    def experiment():
        size = scaled(128, 64)
        frame = quantize_to_uint8(weight_like(size, size, seed=0))[0]
        start = time.perf_counter()
        encoded = encode_frames([frame], EncoderConfig(qp=24))
        encode_s = time.perf_counter() - start
        start = time.perf_counter()
        decode_frames(encoded.data)
        decode_s = time.perf_counter() - start
        return frame.size, encode_s, decode_s

    size, encode_s, decode_s = run_once(experiment)
    enc_mbs = size / encode_s / 1e6
    dec_mbs = size / decode_s / 1e6
    print_table(
        "Software codec throughput (context: NVENC = 1100 MB/s)",
        ("direction", "MB/s"),
        [("encode", f"{enc_mbs:.2f}"), ("decode", f"{dec_mbs:.2f}")],
    )
    assert enc_mbs > 0.01 and dec_mbs > 0.01
