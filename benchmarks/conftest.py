"""Shared fixtures + helpers for the per-figure/table benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
prints the rows it reports.  Sizes are laptop-scale; set
``REPRO_BENCH_FAST=1`` to shrink them further.  Heavy artefacts (the
trained stand-in models) are cached under ``.repro_cache``.
"""

from __future__ import annotations

import os
from typing import Callable

import pytest


def fast_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def scaled(normal: int, fast: int) -> int:
    return fast if fast_mode() else normal


@pytest.fixture()
def run_once(benchmark):
    """Run the expensive experiment exactly once under pytest-benchmark."""

    def runner(fn: Callable, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


def print_table(title: str, header, rows) -> None:
    """Uniform fixed-width table output for every benchmark."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(header[i]))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture(scope="session")
def llama2_sim():
    from repro.models.zoo import load_model

    return load_model("llama2-7b-sim")


@pytest.fixture(scope="session")
def llama3_sim():
    from repro.models.zoo import load_model

    return load_model("llama3-70b-sim")


@pytest.fixture(scope="session")
def pythia160_spec():
    from repro.models.zoo import SPECS

    return SPECS["pythia-160m-sim"]


@pytest.fixture(scope="session")
def pythia14_spec():
    from repro.models.zoo import SPECS

    return SPECS["pythia-1.4b-sim"]
