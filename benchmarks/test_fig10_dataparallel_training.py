"""Figure 10: data-parallel training with weight-gradient compression.

Pythia-160M (sim), 2 workers.  Configurations as in the paper:
uncompressed Adam; LLM.265 at 2.6 / 1.4 / 0.8 bits (no warm-up, no
optimizer change); 1-bit Adam and 1-bit LAMB (warm-up then sign bits,
avg 3.25); group-wise RTN at 4 and 2 bits.

Paper result: quality ranks LLM.265(2.6) > RTN(4) > LLM.265(1.4) >
LLM.265(0.8) ~ 1-bit LAMB > RTN(2, fails), with LLM.265(2.6) close to
uncompressed at a fraction of the bits.
"""

import numpy as np
import pytest

from conftest import print_table, scaled

from repro.distributed import Channel, CodecCompressor, DataParallelTrainer, RTNCompressor
from repro.models.zoo import SPECS
from repro.nn.data import SyntheticCorpus
from repro.nn.optim import OneBitAdam, OneBitLAMB
from repro.nn.transformer import GPT

STEPS = scaled(50, 15)
WORKERS = 2


def _run(label, spec, corpus, channel=None, optimizer_factory=None):
    model = GPT(spec.config, seed=0)
    optimizer = optimizer_factory(model) if optimizer_factory else None
    trainer = DataParallelTrainer(
        model,
        num_workers=WORKERS,
        gradient_channel=Channel(channel) if channel else None,
        optimizer=optimizer,
        lr=3e-3,
    )
    history = trainer.train(corpus.batches(8, STEPS, seed=5), steps=STEPS)
    return {
        "label": label,
        "losses": [h.loss for h in history],
        "val_ppl": model.perplexity(corpus.sample(16, seed=902)),
        "bits": trainer.gradient_channel.average_bits_per_value,
    }


def test_fig10_dataparallel_training(run_once):
    def experiment():
        spec = SPECS["pythia-160m-sim"]
        corpus = SyntheticCorpus(spec.corpus)
        warmup = max(2, int(0.15 * STEPS))
        return [
            _run("uncompressed", spec, corpus),
            _run("LLM.265 (2.6b)", spec, corpus, channel=CodecCompressor(2.6)),
            _run("LLM.265 (1.4b)", spec, corpus, channel=CodecCompressor(1.4)),
            _run("LLM.265 (0.8b)", spec, corpus, channel=CodecCompressor(0.8)),
            _run(
                "1-bit Adam",
                spec,
                corpus,
                optimizer_factory=lambda m: OneBitAdam(
                    m.parameters(), num_workers=WORKERS, lr=3e-3, warmup_steps=warmup
                ),
            ),
            _run(
                "1-bit LAMB",
                spec,
                corpus,
                optimizer_factory=lambda m: OneBitLAMB(
                    m.parameters(), num_workers=WORKERS, lr=3e-3, warmup_steps=warmup
                ),
            ),
            _run("RTN 4-bit", spec, corpus, channel=RTNCompressor(4, group_size=128)),
            _run("RTN 2-bit", spec, corpus, channel=RTNCompressor(2, group_size=128)),
        ]

    runs = run_once(experiment)
    rows = [
        (
            r["label"],
            f"{r['bits']:.2f}",
            f"{r['losses'][0]:.3f}",
            f"{np.mean(r['losses'][-5:]):.3f}",
            f"{r['val_ppl']:.2f}",
        )
        for r in runs
    ]
    print_table(
        f"Figure 10: data-parallel training ({STEPS} steps, {WORKERS} workers)",
        ("config", "avg bits", "first loss", "final loss", "val ppl"),
        rows,
    )

    ppl = {r["label"]: r["val_ppl"] for r in runs}
    bits = {r["label"]: r["bits"] for r in runs}

    # LLM.265 at 2.6 bits lands close to uncompressed...
    assert ppl["LLM.265 (2.6b)"] <= ppl["uncompressed"] * 1.30
    # ...at a genuinely fractional budget, calibration/warm-up free.
    assert bits["LLM.265 (2.6b)"] <= 2.8
    # Lower budgets trade quality smoothly rather than collapsing.
    assert ppl["LLM.265 (1.4b)"] <= ppl["RTN 2-bit"]
    assert ppl["LLM.265 (0.8b)"] <= ppl["RTN 2-bit"] * 1.05
    # Paper's ranking: LLM.265(2.6) beats RTN(4)-ish; RTN(2) is the
    # weakest of the dense-quantization configs.
    assert ppl["LLM.265 (2.6b)"] <= ppl["RTN 4-bit"] * 1.10
    assert ppl["RTN 2-bit"] >= ppl["LLM.265 (2.6b)"]
    # 1-bit methods average ~3.25 bits because of the warm-up.
    assert 2.0 <= bits["1-bit Adam"] <= 4.5
