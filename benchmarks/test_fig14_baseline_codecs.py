"""Figure 14: video codecs vs chained format+compressor baselines.

The baseline grid: convert tensors to {INT8, MXFP4, MXFP6, MXFP8}, then
compress the packed bytes with {Huffman, Deflate, LZ4, CABAC} -- eight
(2x4-style) "tensor codecs".  (a) plots gradient-compression error
against achieved bits; (b) plots model accuracy against bits.

Paper result: the three-in-one codec (same algorithm as LLM.265's
intra pipeline) needs fewer bits than every baseline at equal error,
and keeps higher accuracy at lower bitrates.
"""

import numpy as np
import pytest

from bench_helpers import eval_accuracy, fresh
from conftest import print_table, scaled

from repro.codec.entropy.bytecoder import byte_arith_encode
from repro.codec.entropy.deflate import deflate_compress
from repro.codec.entropy.huffman import huffman_compress
from repro.codec.entropy.lz4 import lz4_compress
from repro.evals import COMMONSENSE_SUITE, build_suite
from repro.models.synthetic_weights import gradient_like
from repro.quant.mxfp import MXFP_FORMATS, mx_pack_bytes, mx_quantize
from repro.quant.rtn import rtn_quantize, rtn_dequantize
from repro.tensor.codec import TensorCodec

COMPRESSORS = {
    "huffman": huffman_compress,
    "deflate": deflate_compress,
    "lz4": lz4_compress,
    "cabac": byte_arith_encode,
}


def _format_variants(tensor: np.ndarray):
    """(restored, packed_bytes) per numeric format."""
    variants = {}
    q8 = rtn_quantize(tensor, 8, symmetric=False, group_size=tensor.size)
    variants["int8"] = (
        rtn_dequantize(q8),
        q8.codes.astype(np.uint8).tobytes(),
    )
    for name, fmt in MXFP_FORMATS.items():
        restored, _ = mx_quantize(tensor, fmt)
        variants[name] = (restored, mx_pack_bytes(tensor, fmt))
    return variants


def test_fig14a_gradient_error_vs_bits(run_once):
    def experiment():
        size = scaled(128, 64)
        grad = gradient_like(size, size, seed=9).astype(np.float64)
        baselines = []
        for fmt_name, (restored, packed) in _format_variants(grad).items():
            error = float(np.mean(np.abs(restored - grad)))
            for comp_name, compress in COMPRESSORS.items():
                bits = 8.0 * len(compress(packed)) / grad.size
                baselines.append((f"{fmt_name}+{comp_name}", bits, error))

        codec = TensorCodec(tile=256)
        ours = []
        for qp in (1, 4, 8, 16, 24, 32):
            compressed = codec.encode(grad, qp=qp)
            restored = codec.decode(compressed)
            ours.append(
                (
                    f"three-in-one qp{qp}",
                    compressed.bits_per_value,
                    float(np.mean(np.abs(restored - grad))),
                )
            )
        return baselines, ours

    baselines, ours = run_once(experiment)
    rows = [
        (name, f"{bits:.2f}", f"{err:.2e}") for name, bits, err in baselines + ours
    ]
    print_table(
        "Figure 14(a): gradient compression error vs bits/value",
        ("codec", "bits/value", "mean abs error"),
        rows,
    )

    # Dominance check: every lossy-format baseline is beaten outright
    # (fewer bits at no more error).  The int8 points sit on the same
    # 8-bit pre-quantization grid the codec itself uses, so there the
    # codec can only tie on error; require it to be within 10% on rate.
    for name, bits, err in baselines:
        if name.startswith("int8"):
            dominated = any(
                our_bits <= bits * 1.10 and our_err <= err * 1.02
                for _, our_bits, our_err in ours
            )
        else:
            dominated = any(
                our_bits <= bits + 1e-9 and our_err <= err * 1.001
                for _, our_bits, our_err in ours
            )
        assert dominated, f"{name} not dominated by the video codec"


def test_fig14b_accuracy_vs_bits(run_once):
    def experiment():
        model_name = "llama2-7b-sim"
        base_model, corpus = fresh(model_name)
        tasks = build_suite(corpus, COMMONSENSE_SUITE[:4], num_items=scaled(20, 8))
        baseline = eval_accuracy(base_model, tasks)["avg"]

        # Best practical baseline: MXFP4 + CABAC on every weight.
        mx_model, _ = fresh(model_name)
        total_bits = 0.0
        total_values = 0

        def mx_transform(name, w):
            nonlocal total_bits, total_values
            restored, _ = mx_quantize(w, MXFP_FORMATS["mxfp4"])
            packed = mx_pack_bytes(w, MXFP_FORMATS["mxfp4"])
            total_bits += 8.0 * len(byte_arith_encode(packed))
            total_values += w.size
            return restored

        mx_model.apply_weight_transform(mx_transform)
        mx_accuracy = eval_accuracy(mx_model, tasks)["avg"]
        mx_bits = total_bits / total_values

        codec_model, _ = fresh(model_name)
        codec = TensorCodec(tile=128)
        names = sorted(codec_model.weight_matrices())
        compressed = {
            n: codec.encode(codec_model.weight_matrices()[n], bits_per_value=3.0)
            for n in names
        }
        codec_bits = sum(c.nbytes * 8 for c in compressed.values()) / sum(
            c.num_values for c in compressed.values()
        )
        restored = {n: codec.decode(c) for n, c in compressed.items()}
        codec_model.apply_weight_transform(lambda n, w: restored[n])
        codec_accuracy = eval_accuracy(codec_model, tasks)["avg"]
        return baseline, (mx_bits, mx_accuracy), (codec_bits, codec_accuracy)

    baseline, mx, ours = run_once(experiment)
    rows = [
        ("fp16 baseline", "16.00", f"{baseline:.3f}"),
        ("mxfp4+cabac", f"{mx[0]:.2f}", f"{mx[1]:.3f}"),
        ("three-in-one (LLM.265)", f"{ours[0]:.2f}", f"{ours[1]:.3f}"),
    ]
    print_table(
        "Figure 14(b): weight-compression accuracy vs bits",
        ("codec", "bits/value", "avg accuracy"),
        rows,
    )
    # Fewer bits, equal-or-better accuracy.
    assert ours[0] < mx[0]
    assert ours[1] >= mx[1] - 0.05
