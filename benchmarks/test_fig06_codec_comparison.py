"""Figure 6: H.264 vs H.265 vs AV1 as tensor codecs.

Paper result: above ~1.8 bits/value the three codecs' information
efficiency is indistinguishable (differences within noise), which is
why H.265 is chosen for its availability and resolution support.
"""

import numpy as np
import pytest

from bench_helpers import eval_accuracy, fresh
from conftest import print_table, scaled

from repro.codec.profiles import AV1_PROFILE, H264_PROFILE, H265_PROFILE
from repro.evals import COMMONSENSE_SUITE, build_suite
from repro.models.synthetic_weights import weight_like
from repro.tensor.codec import TensorCodec

MODEL = "llama2-7b-sim"
PROFILES = {"h264": H264_PROFILE, "h265": H265_PROFILE, "av1": AV1_PROFILE}


def test_fig06_codec_mse_curves(run_once):
    """Rate-distortion curves on weight tensors for the three codecs."""

    def experiment():
        weight = weight_like(scaled(192, 96), scaled(192, 96), seed=5)
        curves = {}
        for name, profile in PROFILES.items():
            codec = TensorCodec(profile=profile, tile=256)
            points = []
            for bits in (1.8, 2.5, 3.5):
                compressed = codec.encode(weight, bits_per_value=bits)
                restored = codec.decode(compressed)
                points.append(
                    (bits, compressed.bits_per_value, float(np.mean((restored - weight) ** 2)))
                )
            curves[name] = points
        return curves

    curves = run_once(experiment)
    rows = [
        (name, f"{target:.1f}", f"{achieved:.2f}", f"{mse:.2e}")
        for name, points in curves.items()
        for target, achieved, mse in points
    ]
    print_table(
        "Figure 6: information efficiency per codec (weight tensor MSE)",
        ("codec", "target bits", "achieved", "MSE"),
        rows,
    )

    # At every budget >= 1.8 bits the codecs agree within ~2x MSE --
    # the paper calls this "within the noise".
    for index in range(3):
        mses = [curves[name][index][2] for name in PROFILES]
        assert max(mses) < 2.5 * min(mses)


def test_fig06_codec_accuracy(run_once):
    """Normalized task accuracy per codec at a 3-bit budget."""

    def experiment():
        _, corpus = fresh(MODEL)
        tasks = build_suite(corpus, COMMONSENSE_SUITE[:4], num_items=scaled(25, 10))
        base_model, _ = fresh(MODEL)
        baseline = eval_accuracy(base_model, tasks)["avg"]
        results = {}
        for name, profile in PROFILES.items():
            model, _ = fresh(MODEL)
            codec = TensorCodec(profile=profile, tile=128)
            names = sorted(model.weight_matrices())
            restored = {
                n: codec.decode(codec.encode(model.weight_matrices()[n], bits_per_value=3.0))
                for n in names
            }
            model.apply_weight_transform(lambda n, w: restored[n])
            results[name] = eval_accuracy(model, tasks)["avg"]
        return baseline, results

    baseline, results = run_once(experiment)
    rows = [(name, f"{acc:.3f}", f"{acc / baseline:.3f}") for name, acc in results.items()]
    print_table(
        "Figure 6: normalized accuracy at 3.0 bits",
        ("codec", "accuracy", "normalized"),
        rows,
    )
    values = list(results.values())
    assert max(values) - min(values) < 0.10  # differences within noise
