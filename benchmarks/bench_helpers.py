"""Shared machinery for the model-compression benchmarks.

Implements the "apply method X to every weight matrix, then evaluate"
loop that Figures 5-8 and Table 1 all share.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.evals.harness import average_accuracy, evaluate_suite
from repro.models.zoo import load_model
from repro.quant.awq import awq_quantize
from repro.quant.calibrate import collect_linear_inputs
from repro.quant.gptq import gptq_quantize
from repro.quant.rtn import rtn_roundtrip
from repro.tensor.allocation import search_allocation
from repro.tensor.codec import TensorCodec


def fresh(model_name: str):
    """A fresh copy of a cached zoo model plus its corpus."""
    return load_model(model_name)


def calibration_inputs(model, corpus, batches: int = 2) -> Dict[str, np.ndarray]:
    """GPTQ/AWQ calibration activations from the synthetic corpus."""
    data = [corpus.sample(4, seed=1000 + i) for i in range(batches)]
    return collect_linear_inputs(model, data)


def apply_codec(
    model,
    avg_bits: float,
    variable: bool = True,
    tile: int = 128,
    k_grid: Sequence[float] = (-0.05, 0.0, 0.05),
) -> float:
    """Compress every weight matrix with LLM.265; returns achieved bits."""
    # Coarser QP search: halves encode count for a <0.1-bit rate slack.
    codec = TensorCodec(tile=tile, qp_search_precision=0.5)
    names = sorted(model.weight_matrices())
    layers = [model.weight_matrices()[n] for n in names]
    if variable:
        allocation = search_allocation(codec, layers, avg_bits, k_grid=k_grid)
        compressed = allocation.compressed
        achieved = allocation.average_bits
    else:
        compressed = [codec.encode(w, bits_per_value=avg_bits) for w in layers]
        total_bits = sum(c.nbytes * 8 for c in compressed)
        achieved = total_bits / sum(c.num_values for c in compressed)
    restored = {n: codec.decode(c) for n, c in zip(names, compressed)}
    model.apply_weight_transform(lambda name, w: restored[name])
    return achieved


def apply_rtn(model, bits: int, group_size=None) -> float:
    """RTN-quantize every weight matrix; returns effective bits/value."""
    model.apply_weight_transform(
        lambda name, w: rtn_roundtrip(w, bits, symmetric=True, group_size=group_size)
    )
    overhead = 16.0 / group_size if group_size else 0.0
    return bits + overhead


def apply_gptq(model, calib: Dict[str, np.ndarray], bits: int, group_size=None) -> float:
    """GPTQ-quantize every weight matrix with calibration inputs."""

    def transform(name: str, w: np.ndarray) -> np.ndarray:
        inputs = calib.get(name)
        if inputs is None:
            return rtn_roundtrip(w, bits, symmetric=True, group_size=group_size)
        return gptq_quantize(w, inputs, bits=bits, group_size=group_size)

    model.apply_weight_transform(transform)
    return bits + (16.0 / group_size if group_size else 0.0)


def apply_awq(model, calib: Dict[str, np.ndarray], bits: int, group_size=None) -> float:
    """AWQ-quantize every weight matrix with calibration inputs."""

    def transform(name: str, w: np.ndarray) -> np.ndarray:
        inputs = calib.get(name)
        if inputs is None:
            return rtn_roundtrip(w, bits, symmetric=True, group_size=group_size)
        return awq_quantize(w, inputs, bits=bits, group_size=group_size).weight

    model.apply_weight_transform(transform)
    return bits + (16.0 / group_size if group_size else 0.0)


def eval_accuracy(model, tasks) -> Dict[str, float]:
    """Per-task accuracy plus the unweighted average under key 'avg'."""
    results = evaluate_suite(model, tasks)
    results["avg"] = average_accuracy(results)
    return results
