#!/usr/bin/env python
"""Standalone runner for the codec throughput benchmark.

Equivalent to ``llm265 bench``; kept next to the figure benchmarks so
``python benchmarks/bench_throughput.py --output BENCH_codec.json``
regenerates the tracked baseline from a checkout without installing
the console script.  See ``docs/PERFORMANCE.md`` for the methodology
and ``repro.analysis.bench`` for the engine.

Not a pytest module on purpose: throughput numbers are machine
dependent, so they are tracked as a JSON artifact rather than asserted
in the test suite (the *byte-identity* of all configurations IS
asserted, both here and in ``tests/test_parallel_engine.py``).
"""

import sys

from repro.analysis.bench import main

if __name__ == "__main__":
    sys.exit(main())
