"""Table 2: GPU codec support per generation.

Static data reproduced verbatim, plus the selection logic of Section
4.1.1 (H.265 is the codec that works everywhere at 8K both ways).
"""

from conftest import print_table

from repro.gpu.capabilities import GPU_CODEC_SUPPORT, best_codec_for, supports


def test_table2_gpu_support(run_once):
    def experiment():
        rows = []
        for generation in ("ada-lovelace", "ampere", "volta"):
            rows.append(
                (
                    generation,
                    supports(generation, "h264").describe(),
                    supports(generation, "h265").describe(),
                    supports(generation, "av1").describe(),
                    supports(generation, "vp9").describe(),
                )
            )
        return rows

    rows = run_once(experiment)
    print_table(
        "Table 2: GPU support for video codecs",
        ("GPU gen.", "H.264", "H.265", "AV1", "VP9"),
        rows,
    )

    expected = {
        "ada-lovelace": ("4K Enc/Dec.", "8K Enc/Dec.", "8K Enc/Dec.", "8K Dec"),
        "ampere": ("4K Enc/Dec.", "8K Enc/Dec.", "-", "8K Dec"),
        "volta": ("4K Enc/Dec.", "8K Enc/Dec.", "-", "8K Dec"),
    }
    for row in rows:
        assert tuple(row[1:]) == expected[row[0]], row[0]
    # Section 4.1.1's selection: H.265 on every generation.
    for generation in GPU_CODEC_SUPPORT:
        choice = best_codec_for(generation)
        assert supports(generation, choice).usable_for_tensors
        assert supports(generation, "h265").usable_for_tensors
