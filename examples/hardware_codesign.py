#!/usr/bin/env python
"""Sections 6-7: from NVENC's limits to the three-in-one tensor codec.

Reproduces the hardware argument end to end: NVENC/NVDEC throughput
ceilings, die-area comparisons (Figure 12), compression-vs-transfer
energy (Table 3 arithmetic), communication-system sizing (Figure 15a),
and the cluster-level Pareto analysis (Figure 16a).

Run:  python examples/hardware_codesign.py
"""

from repro.gpu.capabilities import GPU_CODEC_SUPPORT, best_codec_for, supports
from repro.gpu.engines import NVDEC, NVENC, effective_link_bandwidth
from repro.hardware.cluster import (
    NVENC_OPTION,
    THREE_IN_ONE_OPTION,
    UNCOMPRESSED,
    Workload,
    pareto_frontier,
    performance_at_budget,
    sweep,
)
from repro.hardware.components import CODEC_COMPONENTS, DEVICES, area_ratio
from repro.hardware.energy import (
    compression_energy_ratio,
    compression_vs_transfer_ratio,
)
from repro.hardware.nic import communication_system_area


def section6_nvenc_limits() -> None:
    print("=== Section 6.1: the NVENC/NVDEC ceiling ===")
    print(f"  NVENC tensor throughput: {NVENC.throughput_mb_s:.0f} MB/s")
    print(f"  NVDEC tensor throughput: {NVDEC.throughput_mb_s:.0f} MB/s")
    bandwidth = effective_link_bandwidth(12.5, compression_ratio=16 / 3.5)
    print(f"  end-to-end on a 100 Gb/s link at 4.57x compression: "
          f"{bandwidth:.0f} MB/s (the engine, not the wire, is the limit)")

    print("\n=== Table 2: codec support per GPU generation ===")
    for generation, row in GPU_CODEC_SUPPORT.items():
        cells = "  ".join(f"{codec}:{entry.describe()}" for codec, entry in row.items())
        print(f"  {generation:13s} {cells}  -> paper picks {best_codec_for(generation)}")


def section6_die_area() -> None:
    print("\n=== Figure 12: die area (7 nm-normalised) ===")
    for name in ("rtx3090-7nm", "server-cpu", "cx5-nic"):
        device = DEVICES[name]
        flag = " (assumed)" if device.assumed else ""
        print(f"  {device.name:13s} {device.area_mm2:7.1f} mm^2{flag}")
    pair = CODEC_COMPONENTS["h264-enc"].area_mm2 + CODEC_COMPONENTS["h264-dec"].area_mm2
    print(f"  h264 enc+dec @100Gbps: {pair:.2f} mm^2  "
          f"({area_ratio('rtx3090-7nm', 'h264'):.0f}x smaller than the GPU, "
          f"{area_ratio('cx5-nic', 'h264'):.0f}x smaller than the NIC)")


def section7_energy() -> None:
    print("\n=== Table 3 / Section 7.3: energy arithmetic ===")
    print(f"  compressing a bit vs transmitting it: "
          f"{compression_vs_transfer_ratio('three-in-one'):.1f}x cheaper "
          f"(paper: 31.7x)")
    print(f"  end-to-end win at 5x compression: "
          f"{compression_energy_ratio(5.0):.2f}x (paper: 4.32x)")

    print("\n=== Figure 15(a): codec+NIC area for 100 Gb/s effective ===")
    for codec, ratio in ((None, 1.0), ("h264", 4.57), ("three-in-one", 4.57)):
        sizing = communication_system_area(codec, ratio)
        label = codec or "uncompressed"
        print(f"  {label:13s} codec {sizing['codec_mm2']:6.2f} + "
              f"NIC {sizing['nic_mm2']:6.1f} = {sizing['total_mm2']:6.1f} mm^2")


def section7_cluster() -> None:
    print("\n=== Figure 16(a): area budget vs training performance ===")
    workload = Workload()
    frontiers = {
        option.name: pareto_frontier(sweep(workload, option))
        for option in (UNCOMPRESSED, NVENC_OPTION, THREE_IN_ONE_OPTION)
    }
    print(f"  {'budget mm^2':>12s}  " + "  ".join(f"{n:>14s}" for n in frontiers))
    for budget in (20_000, 50_000, 100_000, 200_000):
        row = []
        for name, frontier in frontiers.items():
            point = performance_at_budget(frontier, budget)
            row.append(f"{point.tokens_per_s:11.0f} t/s" if point else "-")
        print(f"  {budget:12,}  " + "  ".join(f"{cell:>14s}" for cell in row))


def main() -> None:
    section6_nvenc_limits()
    section6_die_area()
    section7_energy()
    section7_cluster()


if __name__ == "__main__":
    main()
