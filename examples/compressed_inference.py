#!/usr/bin/env python
"""Section 4 scenario: run an LLM with everything compressed.

Compresses the stand-in LLaMA model's weights (variable fractional
bitrates), its KV cache, and its inter-stage activations, then measures
zero-shot accuracy and perplexity against the FP16 model -- the
"LLaMA-3-70B on four 8 GB devices" experiment at laptop scale.

Run:  python examples/compressed_inference.py [--model llama2-7b-sim]
"""

import argparse

import numpy as np

from repro import TensorCodec
from repro.evals import COMMONSENSE_SUITE, build_suite, evaluate_model
from repro.models.zoo import load_model
from repro.quant.kvcache import codec_kv_hook
from repro.tensor.allocation import search_allocation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="llama2-7b-sim")
    parser.add_argument("--weight-bits", type=float, default=2.9)
    parser.add_argument("--kv-bits", type=float, default=2.9)
    parser.add_argument("--items", type=int, default=30)
    args = parser.parse_args()

    print(f"Loading {args.model} (trains + caches on first use)...")
    model, corpus = load_model(args.model)
    tasks = build_suite(corpus, COMMONSENSE_SUITE[:4], num_items=args.items)
    codec = TensorCodec(tile=128)

    baseline = evaluate_model(model, corpus, tasks, ppl_sequences=16)
    print("FP16 baseline:", {k: round(v, 3) for k, v in baseline.items()})

    # --- Weight compression with the variable bit-width search -------------
    names = sorted(model.weight_matrices())
    layers = [model.weight_matrices()[n] for n in names]
    print(f"\nSearching per-layer budgets (B = k*l + b) at "
          f"{args.weight_bits} bits average over {len(layers)} matrices...")
    allocation = search_allocation(
        codec, layers, avg_bits=args.weight_bits, k_grid=(-0.05, 0.0, 0.05)
    )
    print(f"  best slope k={allocation.k:+.2f}, "
          f"achieved {allocation.average_bits:.2f} bits/value "
          f"({16 / allocation.average_bits:.1f}x smaller than FP16)")
    restored = {
        name: codec.decode(ct) for name, ct in zip(names, allocation.compressed)
    }
    model.apply_weight_transform(lambda name, w: restored[name])

    weights_only = evaluate_model(model, corpus, tasks, ppl_sequences=16)
    print("Weights compressed:", {k: round(v, 3) for k, v in weights_only.items()})

    # --- KV-cache compression ----------------------------------------------
    print(f"\nCompressing the KV cache to ~{args.kv_bits} bits via the codec...")
    model.set_kv_hook(codec_kv_hook(codec, bits_per_value=args.kv_bits))
    everything = evaluate_model(model, corpus, tasks, ppl_sequences=16)
    model.set_kv_hook(None)
    print("Weights + KV compressed:", {k: round(v, 3) for k, v in everything.items()})

    # --- Memory arithmetic (the paper's Section 4.2 bottom line) -----------
    params = model.num_parameters()
    fp16_mb = params * 2 / 1e6
    compressed_mb = params * allocation.average_bits / 8 / 1e6
    print(f"\nModel memory: {fp16_mb:.2f} MB (FP16) -> {compressed_mb:.2f} MB "
          f"({fp16_mb / compressed_mb:.1f}x reduction)")
    drop = baseline["perplexity"], everything["perplexity"]
    print(f"Perplexity: {drop[0]:.2f} -> {drop[1]:.2f} "
          f"({100 * (drop[1] / drop[0] - 1):+.1f}%)")


if __name__ == "__main__":
    main()
