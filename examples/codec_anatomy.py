#!/usr/bin/env python
"""Why video codecs work on tensors: the paper's Figures 2-4 as a script.

Walks the encoding pipeline one stage at a time under a distortion
budget (Figure 2b), shows the DCT de-fanging an outlier (Figure 3),
and dissects intra prediction on a structured weight block (Figure 4).

Run:  python examples/codec_anatomy.py
"""

import numpy as np

from repro.codec import intra
from repro.codec.pipeline import run_pipeline_ablation
from repro.codec.transform import forward_dct2
from repro.models.synthetic_weights import weight_like
from repro.tensor.precision import quantize_to_uint8


def figure2_pipeline_ablation() -> None:
    print("=== Figure 2(b): activate the pipeline stage by stage ===")
    frames = [
        quantize_to_uint8(weight_like(128, 128, mean_strength=6.0, seed=s))[0]
        for s in range(3)
    ]
    results = run_pipeline_ablation(frames, pixel_mse_target=4.0)
    for r in results:
        marker = "  <- inter-frame prediction does NOT help" if r.stage.name == "INTER" else ""
        print(f"  {r.stage.name:14s} {r.bits_per_value:5.2f} bits/value{marker}")


def figure3_dct_outliers() -> None:
    print("\n=== Figure 3: the DCT amortises outliers across the block ===")
    rng = np.random.default_rng(0)
    block = rng.normal(0, 1, (8, 8))
    block[3, 4] = 128.0  # the paper's example outlier
    coeffs = forward_dct2(block)
    print(f"  pixel domain: max |value| = {np.max(np.abs(block)):7.1f} "
          f"(one outlier dominates)")
    print(f"  DCT domain:   max |coeff| = {np.max(np.abs(coeffs)):7.1f} "
          f"(energy spread across {np.sum(np.abs(coeffs) > 1)} coefficients)")
    print(f"  energy preserved: {np.sum(block**2):.1f} -> {np.sum(coeffs**2):.1f}")


def figure4_intra_prediction() -> None:
    print("\n=== Figure 4: intra prediction on a weight block ===")
    weight = weight_like(64, 64, mean_strength=6.0, seed=1)
    frame, grid = quantize_to_uint8(weight)
    frame = frame.astype(np.float64)
    mask = np.ones_like(frame, dtype=bool)
    mask[16:, :] = False
    mask[:, 16:] = False
    mask[:16, :16] = True  # only the top-left context is "decoded"

    y0, x0, n = 16, 0, 16
    mask[:16, :] = True  # row of context above the target block
    top, left = intra.gather_references(frame, mask, y0, x0, n)
    block = frame[y0 : y0 + n, x0 : x0 + n]

    best_mode, best_energy = None, np.inf
    for mode in range(intra.NUM_MODES):
        prediction = intra.predict(top, left, mode, n)
        energy = float(np.sum((block - prediction) ** 2))
        if energy < best_energy:
            best_mode, best_energy = mode, energy

    raw_energy = float(np.sum((block - block.mean()) ** 2))
    mode_name = {0: "planar", 1: "DC"}.get(best_mode, f"angular-{best_mode}")
    print(f"  block energy around its mean:      {raw_energy:9.1f}")
    print(f"  residual energy after prediction:  {best_energy:9.1f} "
          f"(mode = {mode_name})")
    print(f"  -> prediction removed {100 * (1 - best_energy / raw_energy):.0f}% "
          f"of the energy before the DCT even runs")


def main() -> None:
    figure2_pipeline_ablation()
    figure3_dct_outliers()
    figure4_intra_prediction()


if __name__ == "__main__":
    main()
