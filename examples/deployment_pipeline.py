#!/usr/bin/env python
"""End-to-end deployment: compressed checkpoint -> generation with a
compressed KV cache.

Models the full Section 4 deployment story at laptop scale: the model
ships as an LLM.265-compressed checkpoint (~5x smaller than FP16),
loads on the "edge device", and generates with its KV cache held in
compressed form.

Run:  python examples/deployment_pipeline.py
"""

import os
import tempfile

import numpy as np

from repro.models.zoo import load_model
from repro.nn.generate import generate
from repro.quant.kvcache import rtn_kv_hook
from repro.tensor.checkpoint import load_checkpoint, save_checkpoint


def main() -> None:
    model, corpus = load_model("llama2-7b-sim")
    params = model.num_parameters()
    print(f"Model: llama2-7b-sim ({params:,} parameters)")

    # --- Ship the checkpoint compressed -----------------------------------
    path = os.path.join(tempfile.gettempdir(), "llama2_7b_sim.lv265")
    stats = save_checkpoint(model.state_dict(), path, bits_per_value=3.5)
    print(
        f"Checkpoint: {stats.raw_fp16_bytes / 1e3:.1f} kB (FP16) -> "
        f"{stats.compressed_bytes / 1e3:.1f} kB on disk "
        f"({stats.compression_ratio:.1f}x, "
        f"{stats.num_compressed_tensors} tensors video-coded, "
        f"{stats.num_raw_tensors} kept raw)"
    )

    # --- Load on the 'device' and check quality ---------------------------
    held_out = corpus.sample(16, seed=31)
    base_ppl = model.perplexity(held_out)
    model.load_state_dict(load_checkpoint(path))
    lossy_ppl = model.perplexity(held_out)
    print(f"Perplexity: {base_ppl:.2f} (original) -> {lossy_ppl:.2f} (compressed)")

    # --- Generate with the KV cache compressed in place -------------------
    prompt = corpus.sample(1, seq_len=12, seed=77)[0]
    clean, cache = generate(model, prompt, max_new_tokens=24)
    lossy, lossy_cache = generate(
        model,
        prompt,
        max_new_tokens=24,
        kv_hook=rtn_kv_hook(4),  # 4-bit KV cache
        compress_every=8,
    )
    agreement = float(np.mean(clean == lossy))
    print(
        f"Generation: {len(clean) - len(prompt)} tokens; "
        f"4-bit-KV output agrees with FP16 on {100 * agreement:.0f}% of tokens"
    )
    print(
        f"KV cache: {cache.nbytes_fp16() / 1e3:.1f} kB at FP16 -> "
        f"{cache.nbytes_fp16() / 4 / 1e3:.1f} kB at 4 bits"
    )
    os.unlink(path)


if __name__ == "__main__":
    main()
