#!/usr/bin/env python
"""Quickstart: compress a weight tensor with the LLM.265 tensor codec.

Demonstrates the three rate-control modes (QP / fractional bitrate /
MSE target) and compares information efficiency against group-wise RTN
quantization at the same budget -- the paper's headline claim.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import TensorCodec
from repro.models.synthetic_weights import weight_like
from repro.quant.rtn import rtn_roundtrip


def main() -> None:
    # A weight matrix with LLM-like statistics: channel structure,
    # bell-shaped values, sparse outliers (see Section 3.1 of the paper).
    weight = weight_like(256, 256, seed=0)
    codec = TensorCodec()  # H.265 toolset, intra-only, 256x256 frames

    print("=== Mode 1: explicit QP ===")
    compressed = codec.encode(weight, qp=24)
    restored = codec.decode(compressed)
    print(f"  qp=24  ->  {compressed.bits_per_value:.2f} bits/value, "
          f"{compressed.compression_ratio:.1f}x vs FP16, "
          f"MSE={np.mean((restored - weight) ** 2):.2e}")

    print("=== Mode 2: fractional bitrate target (the paper's 2.9 bits) ===")
    compressed = codec.encode(weight, bits_per_value=2.9)
    restored = codec.decode(compressed)
    print(f"  target=2.9  ->  {compressed.bits_per_value:.2f} bits/value, "
          f"MSE={np.mean((restored - weight) ** 2):.2e}")

    print("=== Mode 3: distortion budget ===")
    compressed = codec.encode(weight, target_mse=2e-5)
    restored = codec.decode(compressed)
    print(f"  MSE<=2e-5  ->  {compressed.bits_per_value:.2f} bits/value, "
          f"achieved MSE={np.mean((restored - weight) ** 2):.2e}")

    print("=== LLM.265 vs group-wise RTN at equal bits ===")
    for bits in (2.0, 3.0, 4.0):
        compressed = codec.encode(weight, bits_per_value=bits)
        codec_mse = np.mean((codec.decode(compressed) - weight) ** 2)
        rtn = rtn_roundtrip(weight, int(bits), symmetric=True, group_size=128)
        rtn_mse = np.mean((rtn - weight) ** 2)
        print(f"  {bits:.0f} bits: codec MSE={codec_mse:.2e}  "
              f"RTN-128G MSE={rtn_mse:.2e}  "
              f"(codec is {rtn_mse / codec_mse:.1f}x more accurate)")

    print("=== Serialization ===")
    blob = codec.encode(weight, qp=24).to_bytes()
    from repro import CompressedTensor

    revived = CompressedTensor.from_bytes(blob)
    print(f"  {len(blob)} bytes on the wire; decodes to "
          f"{codec.decode(revived).shape} {revived.dtype}")


if __name__ == "__main__":
    main()
