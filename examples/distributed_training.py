#!/usr/bin/env python
"""Section 5 scenario: communication-compressed distributed training.

Part 1 trains a model under 4-stage pipeline parallelism with LLM.265
activation compression (3.5 bits) and residual-compensated gradient
compression.  Part 2 trains under data parallelism comparing LLM.265
gradient compression against 1-bit Adam.  Both report the byte-exact
communication savings.

Run:  python examples/distributed_training.py [--steps 30]
"""

import argparse

import numpy as np

from repro.distributed import (
    Channel,
    CodecCompressor,
    DataParallelTrainer,
    PipelineParallelTrainer,
    ResidualCompressor,
)
from repro.models.zoo import SPECS
from repro.nn.data import SyntheticCorpus
from repro.nn.optim import OneBitAdam
from repro.nn.transformer import GPT
from repro.tensor.codec import TensorCodec
from repro.tensor.residual import ResidualGradientCompressor


def pipeline_demo(steps: int) -> None:
    print("=== Pipeline parallelism (Pythia-1.4B stand-in, 4 stages) ===")
    spec = SPECS["pythia-1.4b-sim"]
    corpus = SyntheticCorpus(spec.corpus)

    runs = {
        "uncompressed": (None, None),
        "LLM.265(A)": (CodecCompressor(bits_per_value=3.5), None),
        "LLM.265(A+G)": (
            CodecCompressor(bits_per_value=3.5),
            ResidualCompressor(
                ResidualGradientCompressor(TensorCodec(tile=128), switch_step=steps // 2)
            ),
        ),
    }
    for label, (act, grad) in runs.items():
        model = GPT(spec.config, seed=0)
        trainer = PipelineParallelTrainer(
            model,
            num_stages=4,
            activation_channel=Channel(act),
            gradient_channel=Channel(grad),
            micro_batches=2,
        )
        history = trainer.train(corpus.batches(8, steps, seed=1), steps=steps)
        val = model.perplexity(corpus.sample(16, seed=999))
        print(
            f"  {label:14s} loss {history[0].loss:.3f} -> {history[-1].loss:.3f}   "
            f"val ppl {val:7.2f}   "
            f"act {trainer.activation_channel.average_bits_per_value:5.2f} b/v   "
            f"grad {trainer.gradient_channel.average_bits_per_value:5.2f} b/v"
        )


def dataparallel_demo(steps: int) -> None:
    print("\n=== Data parallelism (Pythia-160M stand-in, 2 workers) ===")
    spec = SPECS["pythia-160m-sim"]
    corpus = SyntheticCorpus(spec.corpus)

    def fresh():
        return GPT(spec.config, seed=0)

    # LLM.265 at 2.6 bits from step zero -- no warm-up needed.
    model = fresh()
    trainer = DataParallelTrainer(
        model,
        num_workers=2,
        gradient_channel=Channel(CodecCompressor(bits_per_value=2.6)),
    )
    history = trainer.train(corpus.batches(8, steps, seed=2), steps=steps)
    print(
        f"  LLM.265 (2.6b) loss {history[0].loss:.3f} -> {history[-1].loss:.3f}   "
        f"avg {trainer.gradient_channel.average_bits_per_value:.2f} b/v   "
        f"{trainer.gradient_channel.compression_ratio:.1f}x traffic saved"
    )

    # 1-bit Adam: warm-up at FP16 then 1-bit momentum.
    model = fresh()
    opt = OneBitAdam(
        model.parameters(), num_workers=2, lr=3e-3, warmup_steps=max(1, steps // 6)
    )
    trainer = DataParallelTrainer(model, num_workers=2, optimizer=opt)
    history = trainer.train(corpus.batches(8, steps, seed=2), steps=steps)
    print(
        f"  1-bit Adam     loss {history[0].loss:.3f} -> {history[-1].loss:.3f}   "
        f"avg {opt.average_bits:.2f} b/v (16-bit warm-up then sign bits)"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=30)
    args = parser.parse_args()
    pipeline_demo(args.steps)
    dataparallel_demo(args.steps)


if __name__ == "__main__":
    main()
