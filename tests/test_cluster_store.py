"""Tests for the per-shard durable store (`repro.cluster.store`).

Covers the two promises everything else stands on: an acknowledged
write survives any crash (journal replay, torn-tail truncation), and a
damaged byte is never served silently (CRC verification, quarantine,
typed errors chained onto the checksum taxonomy) -- plus the
concurrent-writer discipline mirrored from the checkpoint writer's
racing suite.
"""

import os
import struct
import threading

import pytest

from repro.resilience.errors import ChecksumError
from repro.resilience.faults import FaultInjector
from repro.resilience.framing import crc32
from repro.cluster.store import (
    PUT_STAGES,
    NotFound,
    Quarantined,
    ShardStore,
    StoreClosed,
    StoreError,
    scan_store,
)


@pytest.fixture
def store(tmp_path):
    return ShardStore(str(tmp_path / "s0"), shard_id="s0")


class TestPutGet:
    def test_round_trip_bit_exact(self, store):
        payload = os.urandom(4096)
        entry = store.put("key", payload, 1)
        assert entry.length == len(payload)
        assert store.get("key") == payload

    def test_missing_key_is_typed_not_found(self, store):
        with pytest.raises(NotFound):
            store.get("ghost")
        assert isinstance(NotFound("x"), StoreError)

    def test_content_addressing_dedupes_identical_payloads(self, store):
        payload = b"shared-bytes" * 100
        a = store.put("a", payload, 1)
        b = store.put("b", payload, 2)
        assert a.hash_hex == b.hash_hex
        segments = [
            name for name in os.listdir(store.segments_dir)
            if name.endswith(".seg")
        ]
        assert len(segments) == 1

    def test_higher_version_wins_lower_is_ignored(self, store):
        store.put("k", b"new", 5)
        store.put("k", b"old", 3)  # stale write, e.g. a repair loser
        assert store.get("k") == b"new"

    def test_delete_tombstone_survives_recovery(self, store):
        store.put("k", b"data", 1)
        store.delete("k", 2)
        with pytest.raises(NotFound):
            store.get("k")
        store.crash()
        store.recover()
        with pytest.raises(NotFound):
            store.get("k")

    def test_closed_store_refuses_typed(self, store):
        store.crash()
        with pytest.raises(StoreClosed):
            store.put("k", b"x", 1)
        with pytest.raises(StoreClosed):
            store.get("k")

    def test_put_stage_order(self, store):
        stages = []
        store.put("k", b"x" * 100, 1, gate=stages.append)
        assert tuple(stages) == PUT_STAGES


class TestCrashRecovery:
    """A kill at every write stage; the ack point divides the outcomes."""

    class _Die(Exception):
        pass

    def _crash_at(self, store, stage, key, payload, version):
        def gate(reached):
            if reached == stage:
                raise self._Die()

        with pytest.raises(self._Die):
            store.put(key, payload, version, gate=gate)
        store.crash()
        return store.recover()

    @pytest.mark.parametrize(
        "stage", ["put_begin", "segment_staged", "segment_linked",
                  "journal_partial"]
    )
    def test_crash_before_ack_loses_only_that_write(self, store, stage):
        store.put("durable", b"must-survive", 1)
        report = self._crash_at(store, stage, "doomed", b"lost", 2)
        assert store.get("durable") == b"must-survive"
        with pytest.raises(NotFound):
            store.get("doomed")
        if stage == "journal_partial":
            # The kill landed inside the journal append: recovery must
            # have truncated a genuinely torn record.
            assert report.torn_tail
            assert report.truncated_bytes > 0

    def test_crash_at_ack_point_keeps_the_write(self, store):
        # journal_synced fires *after* the fsync: the client never saw
        # the ack, but the bytes are durable -- recovery must keep them.
        report = self._crash_at(store, "journal_synced", "k", b"kept", 1)
        assert report.keys == 1
        assert store.get("k") == b"kept"

    def test_torn_tail_truncation_allows_clean_appends(self, store):
        store.put("a", b"one", 1)
        self._crash_at(store, "journal_partial", "b", b"two", 2)
        store.put("c", b"three", 3)
        store.crash()
        report = store.recover()
        assert not report.torn_tail
        assert store.get("a") == b"one"
        assert store.get("c") == b"three"

    def test_orphan_tmp_files_removed_on_recovery(self, store):
        orphan = os.path.join(store.segments_dir, ".tmp.999.1.0")
        with open(orphan, "wb") as handle:
            handle.write(b"staged but never linked")
        store.crash()
        report = store.recover()
        assert report.tmp_files_removed == 1
        assert not os.path.exists(orphan)

    def test_corrupt_journal_record_stops_replay_and_truncates(self, store):
        store.put("early", b"kept", 1)
        journal = store._journal_path()
        store.close()
        # Flip a payload byte inside the *last* record so its framing
        # CRC fails while the file length stays plausible.
        with open(journal, "r+b") as handle:
            handle.seek(-3, os.SEEK_END)
            byte = handle.read(1)
            handle.seek(-3, os.SEEK_END)
            handle.write(bytes([byte[0] ^ 0xFF]))
        report = store.recover()
        assert report.corrupt_records == 1
        assert report.keys == 0  # the damaged record was 'early''s

    def test_unrecognised_journal_header_starts_fresh(self, tmp_path):
        directory = str(tmp_path / "bad")
        os.makedirs(directory)
        with open(os.path.join(directory, "journal.log"), "wb") as handle:
            handle.write(b"garbage-not-a-journal")
        store = ShardStore(directory)
        assert store.last_recovery.corrupt_records == 1
        store.put("k", b"fine", 1)
        assert store.get("k") == b"fine"

    def test_missing_segment_quarantined_on_recovery(self, store):
        entry = store.put("k", b"data", 1)
        store.crash()
        os.unlink(store._segment_path(entry.hash_hex))
        report = store.recover()
        assert report.segments_missing == 1
        with pytest.raises(Quarantined):
            store.get("k")


class TestQuarantine:
    def test_bit_flip_raises_typed_chained_onto_checksum_error(self, store):
        entry = store.put("k", b"payload" * 64, 1)
        FaultInjector(seed=1).file_bit_flip(
            store._segment_path(entry.hash_hex), 3
        )
        with pytest.raises(Quarantined) as excinfo:
            store.get("k")
        assert isinstance(excinfo.value.__cause__, ChecksumError)
        # The damaged segment was moved aside for forensics.
        assert os.path.exists(
            os.path.join(store.quarantine_dir, f"{entry.hash_hex}.seg")
        )
        # Subsequent reads stay typed without re-probing the disk.
        with pytest.raises(Quarantined):
            store.get("k")

    def test_quarantined_key_absent_from_digest(self, store):
        entry = store.put("k", b"data", 1)
        store.put("clean", b"fine", 2)
        FaultInjector(seed=2).file_truncate(
            store._segment_path(entry.hash_hex), at=1
        )
        with pytest.raises(Quarantined):
            store.get("k")
        assert set(store.digest()) == {"clean"}

    def test_rewrite_after_quarantine_restores_service(self, store):
        entry = store.put("k", b"original", 1)
        FaultInjector(seed=3).file_unlink(
            store._segment_path(entry.hash_hex)
        )
        with pytest.raises(Quarantined):
            store.get("k")
        store.put("k", b"original", 2)  # e.g. an anti-entropy repair copy
        assert store.get("k") == b"original"


class TestScrub:
    def test_scrub_finds_latent_damage_before_a_reader(self, store):
        entries = {
            f"k{i}": store.put(f"k{i}", os.urandom(512), i + 1)
            for i in range(6)
        }
        FaultInjector(seed=4).file_bit_flip(
            store._segment_path(entries["k3"].hash_hex), 1
        )
        outcome = store.scrub(None)
        assert outcome["corrupt"] == ["k3"]
        assert store.counters["scrub_corrupt"] == 1
        with pytest.raises(Quarantined):
            store.get("k3")
        assert store.get("k1") is not None

    def test_budgeted_scrub_round_robins_all_keys(self, store):
        for i in range(5):
            store.put(f"k{i}", bytes([i]) * 64, i + 1)
        seen = 0
        for _ in range(5):
            seen += store.scrub(1)["checked"]
        assert seen == 5
        assert store.counters["scrub_checked"] == 5


class TestScan:
    def test_clean_store_scans_clean(self, store):
        store.put("k", b"data", 1)
        scan = scan_store(store.directory, deep=True)
        assert scan["issues"] == []
        assert scan["keys"] == 1

    def test_scan_classifies_torn_vs_corrupt(self, store):
        store.put("k", b"data", 1)
        store.close()
        with open(store._journal_path(), "ab") as handle:
            handle.write(struct.pack("<II", 4096, 0))  # torn header
        scan = scan_store(store.directory)
        assert scan["torn_tail"]
        assert [c for c, _, _ in scan["issues"]] == ["torn"]

    def test_scan_deep_catches_payload_rot(self, store):
        entry = store.put("k", b"data" * 100, 1)
        store.close()
        path = store._segment_path(entry.hash_hex)
        with open(path, "r+b") as handle:
            handle.write(b"\x00")
        fast = scan_store(store.directory, deep=False)
        assert fast["issues"] == []  # length unchanged: fast scan is blind
        deep = scan_store(store.directory, deep=True)
        assert [c for c, _, _ in deep["issues"]] == ["corrupt"]

    def test_scan_does_not_mutate(self, store):
        store.put("k", b"data", 1)
        store.close()
        with open(store._journal_path(), "ab") as handle:
            handle.write(b"\x01\x02")
        before = os.path.getsize(store._journal_path())
        scan_store(store.directory)
        assert os.path.getsize(store._journal_path()) == before


class TestConcurrentWriters:
    """Racing writers on one store (satellite).

    Mirrors the checkpoint racing-writer suite: unique temp segment
    names mean stagings never interleave, and the journal lock means
    the record stream is always a sequence of complete records --
    whatever the interleaving, recovery must see one winner per key
    and zero torn state.
    """

    def test_many_writers_distinct_keys_all_durable(self, store):
        errors = []

        def writer(index):
            try:
                for op in range(8):
                    store.put(
                        f"w{index}-{op}",
                        bytes([index]) * (64 + op),
                        index * 100 + op,
                    )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        store.crash()
        report = store.recover()
        assert report.keys == 48
        assert not report.torn_tail and not report.corrupt_records
        for index in range(6):
            for op in range(8):
                assert store.get(f"w{index}-{op}") == bytes([index]) * (64 + op)

    def test_barrier_synchronised_same_key_race_single_winner(
        self, store, monkeypatch
    ):
        import os as os_module

        barrier = threading.Barrier(2, timeout=30.0)
        real_replace = os_module.replace

        def synced_replace(src, dst):
            # Both writers fully stage their segments before either
            # rename lands -- the worst-case interleaving.
            if os.sep + ".tmp." in src:
                try:
                    barrier.wait()
                except threading.BrokenBarrierError:
                    pass
            return real_replace(src, dst)

        monkeypatch.setattr(os_module, "replace", synced_replace)

        errors = []

        def writer(tag):
            try:
                store.put("contested", bytes([tag]) * 256, tag)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(tag,)) for tag in (1, 2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # The committed value is exactly ONE writer's payload...
        value = store.get("contested")
        assert value in (bytes([1]) * 256, bytes([2]) * 256)
        # ...the higher version, per the version-guarded index.
        assert value == bytes([2]) * 256
        # And recovery replays to the same winner.
        store.crash()
        store.recover()
        assert store.get("contested") == bytes([2]) * 256

    def test_crash_between_stage_and_rename_leaves_no_damage(self, store):
        """One writer dies after staging, before the journal append."""
        store.put("durable", b"base", 1)

        class Die(Exception):
            pass

        def gate(stage):
            if stage == "segment_linked":
                raise Die()

        with pytest.raises(Die):
            store.put("doomed", b"never-acked", 2, gate=gate)
        store.crash()
        report = store.recover()
        # The linked segment is an unreferenced blob, not damage: no
        # torn tail, no corrupt records, the durable key intact.
        assert not report.torn_tail and not report.corrupt_records
        assert store.get("durable") == b"base"
        with pytest.raises(NotFound):
            store.get("doomed")


class TestDiskFaultInjector:
    """The FaultInjector's at-rest modes (satellite)."""

    def test_file_bit_flip_changes_exactly_content(self, tmp_path):
        path = str(tmp_path / "f")
        with open(path, "wb") as handle:
            handle.write(b"\x00" * 100)
        injector = FaultInjector(seed=5)
        assert injector.file_bit_flip(path, 2) == 2
        blob = open(path, "rb").read()
        assert len(blob) == 100 and blob != b"\x00" * 100
        assert injector.injected == 1

    def test_file_truncate_and_unlink(self, tmp_path):
        path = str(tmp_path / "f")
        with open(path, "wb") as handle:
            handle.write(b"x" * 100)
        injector = FaultInjector(seed=6)
        removed = injector.file_truncate(path)
        assert removed > 0 and os.path.getsize(path) == 100 - removed
        assert injector.file_unlink(path)
        assert not os.path.exists(path)
        assert injector.injected == 2

    def test_damage_file_is_seeded_and_reports_mode(self, tmp_path):
        modes = []
        for seed in range(8):
            path = str(tmp_path / f"f{seed}")
            with open(path, "wb") as handle:
                handle.write(os.urandom(64))
            modes.append(FaultInjector(seed=seed).damage_file(path))
        assert all(m in ("bit_flip", "truncate", "unlink") for m in modes)
        assert len(set(modes)) > 1  # the draw actually varies
        # Same seed, same file content -> same mode (reproducible).
        path = str(tmp_path / "again")
        with open(path, "wb") as handle:
            handle.write(os.urandom(64))
        assert FaultInjector(seed=0).damage_file(path) == modes[0]

    def test_missing_file_is_a_noop_not_an_error(self, tmp_path):
        injector = FaultInjector(seed=7)
        ghost = str(tmp_path / "ghost")
        assert injector.file_bit_flip(ghost) == 0
        assert injector.file_truncate(ghost) == 0
        assert not injector.file_unlink(ghost)
        assert injector.injected == 0
