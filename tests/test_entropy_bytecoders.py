"""Tests for the byte-oriented coders (Huffman, LZ4, Deflate, byte-CABAC)."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.entropy.bytecoder import (
    byte_arith_decode,
    byte_arith_encode,
    estimate_entropy_bits,
)
from repro.codec.entropy.deflate import deflate_compress, deflate_decompress
from repro.codec.entropy.huffman import huffman_compress, huffman_decompress
from repro.codec.entropy.lz4 import lz4_compress, lz4_decompress

CODECS = {
    "huffman": (huffman_compress, huffman_decompress),
    "lz4": (lz4_compress, lz4_decompress),
    "deflate": (deflate_compress, deflate_decompress),
    "cabac": (byte_arith_encode, byte_arith_decode),
}


def _sample_payloads():
    rng = random.Random(42)
    gaussian = bytes(
        max(0, min(255, int(rng.gauss(128, 12)))) for _ in range(4096)
    )
    return {
        "empty": b"",
        "single": b"x",
        "constant": b"\x00" * 1000,
        "ascii": b"the quick brown fox jumps over the lazy dog " * 40,
        "random": bytes(rng.randrange(256) for _ in range(2048)),
        "gaussian": gaussian,
        "repeating": b"abcd" * 500,
    }


@pytest.mark.parametrize("name", sorted(CODECS))
@pytest.mark.parametrize("payload_name", sorted(_sample_payloads()))
def test_roundtrip(name, payload_name):
    compress, decompress = CODECS[name]
    payload = _sample_payloads()[payload_name]
    assert decompress(compress(payload)) == payload


@pytest.mark.parametrize("name", sorted(CODECS))
def test_compresses_redundant_data(name):
    compress, _ = CODECS[name]
    payload = b"\x07" * 4000
    assert len(compress(payload)) < len(payload) // 4


def test_huffman_beats_raw_on_skewed_bytes():
    rng = random.Random(1)
    payload = bytes(rng.choices(range(8), weights=[100, 30, 10, 5, 2, 1, 1, 1], k=4000))
    assert len(huffman_compress(payload)) < 0.6 * len(payload)


def test_cabac_beats_huffman_on_gaussian_bytes():
    rng = np.random.default_rng(0)
    payload = np.clip(rng.normal(128, 6, 8192), 0, 255).astype(np.uint8).tobytes()
    assert len(byte_arith_encode(payload)) < len(huffman_compress(payload))


def test_lz4_finds_long_matches():
    payload = bytes(range(64)) * 100
    blob = lz4_compress(payload)
    assert len(blob) < 0.1 * len(payload)
    assert lz4_decompress(blob) == payload


def test_lz4_overlapping_match():
    # RLE-like data relies on overlapping copies (offset < match length).
    payload = b"A" * 300 + b"B" + b"A" * 300
    assert lz4_decompress(lz4_compress(payload)) == payload


def test_byte_arith_multi_tree():
    rng = random.Random(9)
    # Interleaved stream: even positions skewed low, odd positions high.
    payload = bytes(
        rng.randrange(0, 16) if i % 2 == 0 else rng.randrange(240, 256)
        for i in range(4096)
    )
    one_tree = byte_arith_encode(payload, num_trees=1)
    two_trees = byte_arith_encode(payload, num_trees=2)
    assert byte_arith_decode(two_trees) == payload
    assert len(two_trees) <= len(one_tree)


def test_byte_arith_rejects_bad_tree_count():
    with pytest.raises(ValueError):
        byte_arith_encode(b"abc", num_trees=0)


def test_entropy_estimate_uniform():
    bits = estimate_entropy_bits(list(range(256)) * 4)
    assert bits == pytest.approx(8 * 1024, rel=1e-6)


def test_entropy_estimate_constant_is_zero():
    assert estimate_entropy_bits([5] * 100) == 0.0


def test_entropy_estimate_empty():
    assert estimate_entropy_bits([]) == 0.0


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=2000))
def test_property_lz4_roundtrip(payload):
    assert lz4_decompress(lz4_compress(payload)) == payload


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=1500))
def test_property_huffman_roundtrip(payload):
    assert huffman_decompress(huffman_compress(payload)) == payload


@settings(max_examples=20, deadline=None)
@given(st.binary(max_size=1000))
def test_property_byte_arith_roundtrip(payload):
    assert byte_arith_decode(byte_arith_encode(payload)) == payload


@settings(max_examples=20, deadline=None)
@given(st.binary(max_size=1200))
def test_property_deflate_roundtrip(payload):
    assert deflate_decompress(deflate_compress(payload)) == payload
