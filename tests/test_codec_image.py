"""Tests for the still-image path (AVC Image Format equivalent)."""

import numpy as np
import pytest

from repro.codec.image import decode_image, encode_image, image_psnr
from repro.codec.profiles import H265_PROFILE


def synthetic_photo(size=64, seed=0):
    """Smooth gradients + edges + texture: photograph-like content."""
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:size, 0:size]
    image = 120 + 60 * np.sin(x / 9.0) + 40 * np.cos(y / 13.0)
    image[size // 3 :, size // 2 :] += 50  # an object edge
    image += rng.normal(0, 3, (size, size))
    return np.clip(image, 0, 255).astype(np.uint8)


class TestImageCodec:
    def test_roundtrip_shape(self):
        image = synthetic_photo()
        decoded = decode_image(encode_image(image, qp=20))
        assert decoded.shape == image.shape
        assert decoded.dtype == np.uint8

    def test_quality_scales_with_qp(self):
        image = synthetic_photo()
        psnrs = [
            image_psnr(image, decode_image(encode_image(image, qp=qp)))
            for qp in (8, 24, 40)
        ]
        assert psnrs[0] > psnrs[1] > psnrs[2]

    def test_bitrate_target(self):
        image = synthetic_photo()
        data = encode_image(image, bits_per_pixel=1.0)
        assert 8.0 * len(data) / image.size <= 1.0 + 0.01

    def test_mse_target(self):
        image = synthetic_photo()
        decoded = decode_image(encode_image(image, max_mse=9.0))
        mse = np.mean((decoded.astype(float) - image.astype(float)) ** 2)
        assert mse <= 9.5  # decode rounding slack

    def test_compresses_photographic_content(self):
        image = synthetic_photo(128)
        data = encode_image(image, qp=28)
        assert len(data) < image.size / 8  # > 8x over raw 8-bit

    def test_reasonable_psnr_at_moderate_rate(self):
        image = synthetic_photo()
        data = encode_image(image, qp=24)
        decoded = decode_image(data)
        assert image_psnr(image, decoded) > 30.0  # visually fine territory

    def test_h265_profile_supported(self):
        image = synthetic_photo()
        decoded = decode_image(encode_image(image, qp=20, profile=H265_PROFILE))
        assert image_psnr(image, decoded) > 30.0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            encode_image(np.zeros((4, 4, 3), dtype=np.uint8))
        with pytest.raises(ValueError):
            encode_image(np.zeros((4, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            encode_image(synthetic_photo(), qp=20, bits_per_pixel=1.0)

    def test_psnr_identity_is_infinite(self):
        image = synthetic_photo()
        assert image_psnr(image, image) == float("inf")

    def test_multi_frame_stream_rejected(self):
        from repro.codec.encoder import EncoderConfig, encode_frames

        image = synthetic_photo(32)
        stream = encode_frames([image, image], EncoderConfig(qp=20))
        with pytest.raises(ValueError):
            decode_image(stream.data)
