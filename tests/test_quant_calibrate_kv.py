"""Tests for calibration capture and KV-cache hooks."""

import numpy as np
import pytest

from repro.models.zoo import load_model
from repro.quant.calibrate import collect_linear_inputs
from repro.quant.kvcache import codec_kv_hook, quantize_kv, rotation_kv_hook, rtn_kv_hook
from repro.models.synthetic_weights import kv_cache_like
from repro.tensor.codec import TensorCodec


@pytest.fixture(scope="module")
def tiny():
    return load_model("tiny-sim")


class TestCalibration:
    def test_captures_every_linear(self, tiny):
        model, corpus = tiny
        calib = collect_linear_inputs(model, [corpus.sample(2, seed=1)])
        linear_weights = {
            name
            for name, p in model.named_parameters()
            if name.endswith(".weight") and p.data.ndim == 2 and "emb" not in name
        }
        assert linear_weights <= set(calib)

    def test_input_shapes_match_in_features(self, tiny):
        model, corpus = tiny
        calib = collect_linear_inputs(model, [corpus.sample(2, seed=2)])
        params = dict(model.named_parameters())
        for name, inputs in calib.items():
            assert inputs.shape[1] == params[name].data.shape[0], name

    def test_row_cap_respected(self, tiny):
        model, corpus = tiny
        calib = collect_linear_inputs(
            model, [corpus.sample(8, seed=3)], max_rows=50
        )
        assert all(x.shape[0] <= 50 for x in calib.values())

    def test_forward_restored_after_capture(self, tiny):
        model, corpus = tiny
        tokens = corpus.sample(1, seed=4)
        before = model.forward(tokens).data
        collect_linear_inputs(model, [tokens])
        after = model.forward(tokens).data
        assert np.array_equal(before, after)

    def test_capture_exception_safe(self, tiny):
        from repro.nn.layers import Linear

        model, _ = tiny
        original = Linear.__call__
        with pytest.raises(Exception):
            collect_linear_inputs(model, [np.full((1, 5), 10**9)])  # bad tokens
        assert Linear.__call__ is original


class TestKVHooks:
    def test_quantize_kv_shape_and_error(self):
        cache = kv_cache_like(2, 32, 8, seed=0).astype(np.float64)
        restored = quantize_kv(cache, 4)
        assert restored.shape == cache.shape
        assert np.mean((restored - cache) ** 2) < np.var(cache)

    def test_rtn_hook_applies_to_both(self):
        hook = rtn_kv_hook(4)
        k = kv_cache_like(1, 16, 8, seed=1).astype(np.float64)
        v = kv_cache_like(1, 16, 8, seed=2).astype(np.float64)
        k2, v2 = hook(k, v, 0)
        assert not np.array_equal(k, k2) and not np.array_equal(v, v2)

    def test_rotation_hook_beats_rtn_on_outliers(self):
        cache = kv_cache_like(2, 32, 16, seed=3).astype(np.float64)
        cache[:, :, 0] *= 30  # outlier channel
        rtn = rtn_kv_hook(3, group_size=64)(cache, cache, 0)[0]
        rot = rotation_kv_hook(3, group_size=64)(cache, cache, 0)[0]
        assert np.mean((rot - cache) ** 2) < np.mean((rtn - cache) ** 2)

    def test_codec_hook_caches_qp(self):
        codec = TensorCodec(tile=64)
        qp_cache = {}
        hook = codec_kv_hook(codec, bits_per_value=3.0, qp_cache=qp_cache)
        k = kv_cache_like(1, 32, 16, seed=4).astype(np.float64)
        hook(k, k, 0)
        assert len(qp_cache) == 2  # one entry each for K and V
        hook(k, k, 0)  # second call reuses
        assert len(qp_cache) == 2

    def test_codec_hook_per_layer_keys(self):
        codec = TensorCodec(tile=64)
        qp_cache = {}
        hook = codec_kv_hook(codec, bits_per_value=3.0, qp_cache=qp_cache)
        k = kv_cache_like(1, 16, 8, seed=5).astype(np.float64)
        hook(k, k, 0)
        hook(k, k, 1)
        assert len(qp_cache) == 4
