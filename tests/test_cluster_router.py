"""Router mechanics with scriptable fake shards.

Covers the dedupe commit cell (satellite 1), the bounded probe path
and its timeout counter (satellite 2), failover taxonomy, drain /
re-admission, and the typed-response guarantee when every replica is
gone.
"""

import threading
import time

import numpy as np
import pytest

from repro.cluster.chaos import CLUSTER_TYPED_ERRORS
from repro.cluster.router import ClusterConfig, ClusterRouter, ClusterUnavailable
from repro.cluster.shard import ShardDown
from repro.resilience.deadline import DeadlineExceeded
from repro.serving.service import ServeResponse

TENSOR = np.zeros((8, 8), dtype=np.float32)


class FakeShard:
    """Scriptable stand-in for a :class:`ClusterShard`.

    ``script(kind)`` returns the :class:`ServeResponse` to answer with;
    ``delay_s`` sleeps first (releasing the GIL, like real IO would).
    Both are plain attributes so tests can retarget a shard mid-run.
    """

    def __init__(self, shard_id, script=None, delay_s=0.0):
        self.shard_id = shard_id
        self.script = script or (
            lambda kind: ServeResponse(
                ok=True, kind=kind, value=shard_id.encode(), rung="fake"
            )
        )
        self.delay_s = delay_s
        self.calls = []
        self.probe_budgets = []

    def _answer(self, kind, budget):
        self.calls.append((kind, budget))
        if self.delay_s:
            time.sleep(self.delay_s)
        return self.script(kind)

    def encode(self, tensor, qp=None, deadline_s=None,
               fault_gate=None, trace_ctx=None):
        return self._answer("encode", deadline_s)

    def decode(self, blob, deadline_s=None, fault_gate=None, trace_ctx=None):
        return self._answer("decode", deadline_s)

    def probe(self, deadline_s, trace_ctx=None):
        self.probe_budgets.append(deadline_s)
        return self._answer("probe", deadline_s)

    def stats(self):
        return {"shard": self.shard_id, "calls": len(self.calls)}


def shard_down(shard_id):
    return lambda kind: ServeResponse(
        ok=False, kind=kind, error=ShardDown(shard_id)
    )


def make_router(script_a=None, script_b=None, **overrides):
    defaults = dict(
        replication=2, hedge=False, cooldown_s=0.15,
        probe_timeout_s=0.08, deadline_s=2.0,
    )
    defaults.update(overrides)
    shards = [FakeShard("a", script_a), FakeShard("b", script_b)]
    return ClusterRouter(ClusterConfig(**defaults), shards=shards)


def key_with_primary(router, shard_id):
    for index in range(2048):
        key = f"k{index}"
        if router.ring.replicas(key, 2)[0] == shard_id:
            return key
    raise AssertionError(f"no key routes to {shard_id} first")


def wait_until(predicate, timeout_s=3.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestRouting:
    def test_roundtrip_commits_primary(self):
        with make_router() as router:
            key = key_with_primary(router, "a")
            response = router.encode(TENSOR, key)
            assert response.ok and response.shard == "a"
            assert response.failovers == 0 and not response.hedged
            assert router.counters["requests"] == 1

    def test_replica_set_follows_the_ring(self):
        with make_router() as router:
            key = key_with_primary(router, "b")
            response = router.decode(b"blob", key)
            assert response.ok and response.shard == "b"

    def test_decode_and_encode_share_key_routing(self):
        with make_router() as router:
            key = key_with_primary(router, "a")
            assert router.encode(TENSOR, key).shard == "a"
            assert router.decode(b"blob", key).shard == "a"


class TestFailover:
    def test_shard_down_fails_over_within_the_request(self):
        with make_router(script_a=shard_down("a")) as router:
            key = key_with_primary(router, "a")
            response = router.encode(TENSOR, key)
            assert response.ok and response.shard == "b"
            assert response.failovers == 1
            assert router.counters["failovers"] == 1

    def test_all_replicas_down_yields_typed_error(self):
        with make_router(
            script_a=shard_down("a"), script_b=shard_down("b")
        ) as router:
            response = router.encode(TENSOR, "k0")
            assert not response.ok
            assert isinstance(response.error, CLUSTER_TYPED_ERRORS)

    def test_deterministic_error_commits_without_failover(self):
        bad = lambda kind: ServeResponse(
            ok=False, kind=kind, error=ValueError("malformed request")
        )
        with make_router(script_a=bad) as router:
            key = key_with_primary(router, "a")
            for _ in range(5):
                response = router.encode(TENSOR, key)
                assert not response.ok
                assert isinstance(response.error, ValueError)
                assert response.failovers == 0
            # Bad input teaches shard health nothing: still on the ring.
            assert "a" in router.ring
            assert router.counters["failovers"] == 0

    def test_request_deadline_yields_typed_deadline_error(self):
        with make_router() as router:
            router.shard("a").delay_s = 0.5
            router.shard("b").delay_s = 0.5
            response = router.encode(TENSOR, "k0", deadline_s=0.05)
            assert not response.ok
            assert isinstance(response.error, DeadlineExceeded)


class TestDedupe:
    def test_at_most_one_commit_per_request(self):
        # Primary is slow-but-healthy; the hedge answers first.  Both
        # results eventually arrive; exactly one is committed and the
        # loser is dropped and counted (satellite 1).
        with make_router(
            hedge=True, hedge_delay_s=0.05, deadline_s=3.0
        ) as router:
            key = key_with_primary(router, "a")
            router.shard("a").delay_s = 0.6
            response = router.encode(TENSOR, key)
            assert response.ok and response.shard == "b"
            assert response.hedged and response.hedge_won
            assert wait_until(
                lambda: router.counters["losers_discarded"] >= 1
            )
            assert router.counters["duplicate_results_dropped"] >= 1
            assert router.counters["hedge_wins"] == 1

    def test_dispatch_never_reuses_a_shard(self):
        # Failover has nowhere to go once both replicas were tried:
        # the request resolves typed instead of re-dispatching.
        with make_router(
            script_a=shard_down("a"), script_b=shard_down("b")
        ) as router:
            response = router.encode(TENSOR, "k3")
            assert not response.ok
            assert len(router.shard("a").calls) + len(
                router.shard("b").calls
            ) == 2


class TestHealthAndProbes:
    def _drain_primary(self, router, key):
        for _ in range(3):  # failure_threshold
            router.encode(TENSOR, key)
        assert "a" not in router.ring
        assert router.counters["shard_drained"] == 1

    def test_repeated_shard_failures_drain_the_ring(self):
        with make_router(script_a=shard_down("a")) as router:
            key = key_with_primary(router, "a")
            self._drain_primary(router, key)
            # Traffic keeps flowing to the survivor, no failovers needed.
            response = router.encode(TENSOR, key)
            assert response.ok and response.shard == "b"
            assert response.failovers == 0

    def test_probe_readmits_a_recovered_shard(self):
        with make_router(script_a=shard_down("a")) as router:
            key = key_with_primary(router, "a")
            self._drain_primary(router, key)
            router.shard("a").script = lambda kind: ServeResponse(
                ok=True, kind=kind, value=b"a", rung="fake"
            )
            time.sleep(router.config.cooldown_s + 0.05)
            router.encode(TENSOR, key)  # triggers _maybe_probe
            assert wait_until(lambda: "a" in router.ring)
            assert router.counters["probes"] == 1
            assert router.counters["shard_readmitted"] == 1

    def test_probe_carries_child_deadline(self):
        # Satellite 2: the half-open probe is budgeted at
        # probe_timeout_s regardless of the live request's deadline.
        with make_router(script_a=shard_down("a")) as router:
            key = key_with_primary(router, "a")
            self._drain_primary(router, key)
            time.sleep(router.config.cooldown_s + 0.05)
            router.encode(TENSOR, key, deadline_s=30.0)
            assert wait_until(lambda: router.shard("a").probe_budgets)
            budget = router.shard("a").probe_budgets[0]
            assert 0 < budget <= router.config.probe_timeout_s

    def test_hung_probe_counts_a_probe_timeout(self):
        with make_router(script_a=shard_down("a")) as router:
            key = key_with_primary(router, "a")
            self._drain_primary(router, key)
            router.shard("a").script = lambda kind: ServeResponse(
                ok=False, kind=kind,
                error=DeadlineExceeded("probe deadline exceeded"),
            )
            time.sleep(router.config.cooldown_s + 0.05)
            router.encode(TENSOR, key)
            assert wait_until(
                lambda: router.counters["probe_timeouts"] >= 1
            )
            assert router.health["a"].probe_timeouts >= 1
            assert "a" not in router.ring  # still drained

    def test_every_shard_drained_still_tries_somebody(self):
        with make_router(
            script_a=shard_down("a"), script_b=shard_down("b")
        ) as router:
            for _ in range(4):
                router.encode(TENSOR, "k1")
            assert len(router.ring) == 0
            response = router.encode(TENSOR, "k1")
            assert not response.ok
            assert isinstance(response.error, CLUSTER_TYPED_ERRORS)
            assert router.counters["no_healthy_shards"] >= 1


class TestConfig:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValueError):
            ClusterRouter(ClusterConfig(), shards=[])

    def test_io_pool_sized_from_shard_envelope(self):
        cfg = ClusterConfig(shards=4, shard_max_inflight=4)
        assert cfg.resolved_io_workers() == 20
        assert ClusterConfig(io_workers=3).resolved_io_workers() == 3

    def test_per_shard_service_seeds_differ(self):
        cfg = ClusterConfig(seed=5)
        assert cfg.service_config(0).seed == 5
        assert cfg.service_config(3).seed == 8

    def test_stats_document_shape(self):
        with make_router() as router:
            router.encode(TENSOR, "k0")
            doc = router.stats()
            assert doc["config"]["replication"] == 2
            assert set(doc["ring"]["members"]) == {"a", "b"}
            assert doc["router"]["requests"] == 1
            assert "a" in doc["health"] and "b" in doc["shards"]
