"""Integration tests for the public TensorCodec API."""

import numpy as np
import pytest

from repro.codec.profiles import AV1_PROFILE, H264_PROFILE, H265_PROFILE
from repro.models.synthetic_weights import weight_like
from repro.quant.rtn import rtn_roundtrip
from repro.tensor.codec import CompressedTensor, TensorCodec


@pytest.fixture(scope="module")
def weight():
    return weight_like(128, 128, seed=7)


@pytest.fixture(scope="module")
def codec():
    return TensorCodec(tile=128)


class TestEncodeDecode:
    def test_roundtrip_preserves_shape_and_dtype(self, codec, weight):
        restored, compressed = codec.roundtrip(weight, qp=20)
        assert restored.shape == weight.shape
        assert restored.dtype == weight.dtype

    def test_qp_controls_quality(self, codec, weight):
        mses = []
        for qp in (4, 20, 36):
            restored, _ = codec.roundtrip(weight, qp=qp)
            mses.append(float(np.mean((restored - weight) ** 2)))
        assert mses[0] < mses[1] < mses[2]

    def test_bits_per_value_target_respected(self, codec, weight):
        for budget in (2.0, 3.0, 4.5):
            compressed = codec.encode(weight, bits_per_value=budget)
            assert compressed.bits_per_value <= budget + 0.05

    def test_fractional_bitrates_are_real(self, codec, weight):
        c1 = codec.encode(weight, bits_per_value=2.3)
        c2 = codec.encode(weight, bits_per_value=2.9)
        assert c1.bits_per_value < c2.bits_per_value <= 2.9

    def test_mse_target_respected(self, codec, weight):
        target = 4e-5
        compressed = codec.encode(weight, target_mse=target)
        restored = codec.decode(compressed)
        assert float(np.mean((restored - weight) ** 2)) <= target * 1.01

    def test_unreachable_budget_returns_finest_not_garbage(self, codec):
        """A (32, 2) head at a 3-bit budget: container overhead alone
        exceeds the budget, so the codec must protect the data."""
        tiny = np.random.default_rng(0).normal(0, 0.1, (32, 2)).astype(np.float32)
        compressed = codec.encode(tiny, bits_per_value=3.0)
        assert not compressed.budget_met
        restored = codec.decode(compressed)
        rel = np.mean((restored - tiny) ** 2) / np.var(tiny)
        assert rel < 0.01  # near-lossless fallback

    def test_budget_met_flag_on_normal_tensors(self, codec, weight):
        compressed = codec.encode(weight, bits_per_value=3.0)
        assert compressed.budget_met

    def test_overhead_dominated_budget_returns_finest_not_garbage(self, codec):
        """A (16, 16) tensor at 3.5 bits: a coarse-enough QP technically
        fits, but only because the fixed header/framing overhead leaves
        almost nothing for the payload.  The codec must refuse to
        obliterate the data to satisfy the letter of the budget."""
        tiny = np.random.default_rng(1).normal(0, 0.1, (16, 16)).astype(np.float32)
        compressed = codec.encode(tiny, bits_per_value=3.5)
        assert not compressed.budget_met
        restored = codec.decode(compressed)
        rel = np.mean((restored - tiny) ** 2) / np.var(tiny)
        assert rel < 0.01  # near-lossless fallback

    def test_conflicting_targets_rejected(self, codec, weight):
        with pytest.raises(ValueError):
            codec.encode(weight, qp=20, bits_per_value=3.0)

    def test_default_target_is_qp(self, codec, weight):
        compressed = codec.encode(weight)
        assert compressed.qp == pytest.approx(24.0)

    def test_multi_tile_tensor(self, weight):
        small_tile = TensorCodec(tile=64)
        restored, compressed = small_tile.roundtrip(weight, qp=16)
        assert compressed.layout.num_tiles == 4
        assert np.mean((restored - weight) ** 2) < 1e-4

    def test_3d_tensor(self, codec):
        stack = np.stack([weight_like(32, 64, seed=s) for s in range(3)])
        restored, compressed = codec.roundtrip(stack, qp=16)
        assert restored.shape == stack.shape
        assert np.mean((restored - stack) ** 2) < 1e-4

    def test_vector_tensor(self, codec):
        vec = np.linspace(-1, 1, 500).astype(np.float32)
        restored, _ = codec.roundtrip(vec, qp=8)
        assert restored.shape == vec.shape
        assert np.mean((restored - vec) ** 2) < 1e-3

    def test_constant_tensor_exact(self, codec):
        t = np.full((32, 32), 0.75, dtype=np.float32)
        restored, compressed = codec.roundtrip(t, qp=20)
        assert np.allclose(restored, t)
        # Bounded by fixed header cost: stream header plus container
        # metadata plus the CRC32 resilience framing (8 bytes/slice +
        # 8-byte payload_len/meta_crc trailer).
        assert compressed.compression_ratio > 24


class TestCompressionQuality:
    def test_beats_groupwise_rtn_at_equal_bits(self, codec):
        """The paper's headline: codec > RTN at the same budget."""
        weight = weight_like(256, 256, seed=3)
        wide = TensorCodec(tile=256)
        for bits in (2.0, 3.0):
            compressed = wide.encode(weight, bits_per_value=bits)
            restored = wide.decode(compressed)
            codec_mse = float(np.mean((restored - weight) ** 2))
            rtn = rtn_roundtrip(weight, int(bits), symmetric=True, group_size=128)
            rtn_mse = float(np.mean((rtn - weight) ** 2))
            assert codec_mse < rtn_mse

    def test_compression_ratio_reported_vs_fp16(self, codec, weight):
        compressed = codec.encode(weight, bits_per_value=3.0)
        assert compressed.compression_ratio == pytest.approx(
            16.0 / compressed.bits_per_value
        )

    @pytest.mark.parametrize(
        "profile", [H264_PROFILE, H265_PROFILE, AV1_PROFILE], ids=lambda p: p.name
    )
    def test_all_profiles_work(self, profile, weight):
        codec = TensorCodec(profile=profile, tile=128)
        restored, compressed = codec.roundtrip(weight, qp=20)
        assert np.mean((restored - weight) ** 2) < 1e-4


class TestSerialization:
    def test_to_from_bytes(self, codec, weight):
        compressed = codec.encode(weight, qp=20)
        blob = compressed.to_bytes()
        revived = CompressedTensor.from_bytes(blob)
        assert np.array_equal(codec.decode(revived), codec.decode(compressed))

    def test_nbytes_accounts_metadata(self, codec, weight):
        compressed = codec.encode(weight, qp=20)
        assert compressed.nbytes > len(compressed.data)

    def test_nbytes_equals_serialized_size(self, codec, weight):
        """Reported size must match the actual container byte-for-byte."""
        for kwargs in ({"qp": 20}, {"bits_per_value": 3.0}):
            compressed = codec.encode(weight, **kwargs)
            assert compressed.nbytes == len(compressed.to_bytes())

    def test_nbytes_exact_for_vector_and_3d(self, codec):
        vec = np.linspace(-1, 1, 500).astype(np.float32)
        stack = np.stack([weight_like(32, 64, seed=s) for s in range(3)])
        for tensor in (vec, stack):
            compressed = codec.encode(tensor, qp=16)
            assert compressed.nbytes == len(compressed.to_bytes())

    def test_mx_alignment_roundtrip_through_bytes(self, weight):
        mx_codec = TensorCodec(tile=128, alignment="mx")
        compressed = mx_codec.encode(weight, qp=20)
        assert compressed.nbytes == len(compressed.to_bytes())
        revived = CompressedTensor.from_bytes(compressed.to_bytes())
        assert np.array_equal(mx_codec.decode(revived), mx_codec.decode(compressed))

    def test_from_bytes_rejects_garbage(self):
        with pytest.raises(ValueError):
            CompressedTensor.from_bytes(b"not a container")
        with pytest.raises(ValueError):
            CompressedTensor.from_bytes(b"L5\xff" + b"\x00" * 40)  # bad version

    def test_from_bytes_rejects_truncation(self, codec, weight):
        blob = codec.encode(weight, qp=20).to_bytes()
        with pytest.raises(ValueError, match="truncated"):
            CompressedTensor.from_bytes(blob[:20])

    def test_encode_stats_excluded_from_serialization(self, codec, weight):
        from repro import telemetry

        with telemetry.session():
            compressed = codec.encode(weight, qp=20)
        assert compressed.encode_stats is not None
        revived = CompressedTensor.from_bytes(compressed.to_bytes())
        assert revived.encode_stats is None
        assert revived.nbytes == compressed.nbytes

    def test_summary_and_repr(self, codec, weight):
        compressed = codec.encode(weight, qp=20)
        text = compressed.summary()
        assert repr(compressed) == text
        assert "CompressedTensor(" in text
        assert "h265" in text
        assert f"{compressed.nbytes}" in text
