"""Tests for codec profiles and the encoder's profile plumbing."""

import numpy as np
import pytest

from repro.codec import intra
from repro.codec.profiles import (
    AV1_PROFILE,
    H264_PROFILE,
    H265_PROFILE,
    PROFILES_BY_ID,
    PROFILES_BY_NAME,
    CodecProfile,
    profile_by_name,
)


class TestProfiles:
    def test_lookup_by_name(self):
        assert profile_by_name("H265") is H265_PROFILE
        assert profile_by_name("av1") is AV1_PROFILE
        with pytest.raises(ValueError):
            profile_by_name("vp9")

    def test_ids_unique_and_resolvable(self):
        assert len(PROFILES_BY_ID) == 3
        for pid, profile in PROFILES_BY_ID.items():
            assert profile.profile_id == pid

    def test_h264_is_macroblock_sized(self):
        assert H264_PROFILE.ctu_size == 16
        assert H264_PROFILE.min_cu_size == 4

    def test_h265_has_full_angular_set(self):
        assert len(H265_PROFILE.angular_modes) == 33
        assert len(H265_PROFILE.all_modes) == 35

    def test_h264_has_reduced_mode_set(self):
        assert len(H264_PROFILE.all_modes) < len(H265_PROFILE.all_modes)

    def test_all_modes_include_planar_and_dc(self):
        for profile in PROFILES_BY_NAME.values():
            assert intra.PLANAR in profile.all_modes
            assert intra.DC in profile.all_modes

    def test_coarse_modes_subset_of_all(self):
        for profile in PROFILES_BY_NAME.values():
            assert set(profile.coarse_modes()) <= set(profile.all_modes)

    def test_refine_modes_window(self):
        refine = H265_PROFILE.refine_modes(20)
        assert 20 not in refine
        assert all(18 <= m <= 22 for m in refine)
        assert H265_PROFILE.refine_modes(intra.DC) == ()

    def test_refine_clamped_at_range_ends(self):
        low = H265_PROFILE.refine_modes(intra.ANGULAR_FIRST)
        high = H265_PROFILE.refine_modes(intra.ANGULAR_LAST)
        assert all(m >= intra.ANGULAR_FIRST for m in low)
        assert all(m <= intra.ANGULAR_LAST for m in high)

    def test_h264_no_refinement(self):
        assert H264_PROFILE.refine_modes(10) == ()

    def test_max_resolution_matches_table2(self):
        assert H264_PROFILE.max_resolution == 3840
        assert H265_PROFILE.max_resolution == 7680

    def test_profiles_frozen(self):
        with pytest.raises(Exception):
            H265_PROFILE.ctu_size = 64
