"""Tests for the ring all-reduce simulation."""

import numpy as np
import pytest

from repro.distributed import RTNCompressor
from repro.distributed.allreduce import ring_allreduce


class TestRingAllReduce:
    @pytest.mark.parametrize("workers", [2, 3, 4, 7])
    def test_lossless_matches_mean(self, workers):
        rng = np.random.default_rng(workers)
        tensors = [rng.normal(size=(13, 9)) for _ in range(workers)]
        result = ring_allreduce(tensors)
        expected = np.mean(tensors, axis=0)
        for reduced in result.reduced:
            assert np.allclose(reduced, expected, atol=1e-12)

    def test_sum_mode(self):
        tensors = [np.ones((4, 4)) * (i + 1) for i in range(3)]
        result = ring_allreduce(tensors, average=False)
        assert np.allclose(result.reduced[0], 6.0)

    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_traffic_matches_textbook_formula(self, workers):
        """The 2(p-1)/p constant used by the Figure 16 model, derived."""
        tensors = [np.zeros(workers * 64) for _ in range(workers)]
        result = ring_allreduce(tensors)
        assert result.bytes_per_worker == pytest.approx(
            result.textbook_bytes, rel=0.01
        )

    def test_step_count(self):
        tensors = [np.zeros(32) for _ in range(4)]
        assert ring_allreduce(tensors).steps == 2 * (4 - 1)

    def test_compressed_collective_is_close_not_exact(self):
        rng = np.random.default_rng(5)
        tensors = [rng.normal(size=256) for _ in range(4)]
        result = ring_allreduce(tensors, compressor=RTNCompressor(8, group_size=64))
        expected = np.mean(tensors, axis=0)
        for reduced in result.reduced:
            error = np.mean((reduced - expected) ** 2)
            assert 0 < error < np.var(expected) / 50

    def test_single_worker_rejected(self):
        with pytest.raises(ValueError):
            ring_allreduce([np.zeros(4)])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ring_allreduce([np.zeros(4), np.zeros(5)])

    def test_uneven_segments(self):
        """Payload not divisible by worker count still reduces exactly."""
        rng = np.random.default_rng(6)
        tensors = [rng.normal(size=17) for _ in range(3)]
        result = ring_allreduce(tensors)
        expected = np.mean(tensors, axis=0)
        for reduced in result.reduced:
            assert np.allclose(reduced, expected, atol=1e-12)
