"""Unit + property tests for the adaptive binary arithmetic coder."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.entropy.arithmetic import BinaryDecoder, BinaryEncoder, ContextSet


def _roundtrip_bits(bits, n_ctx=4, ctx_of=None):
    ctx_of = ctx_of or (lambda i: i % n_ctx)
    enc = BinaryEncoder()
    ctx = ContextSet(n_ctx)
    for i, bit in enumerate(bits):
        enc.encode_bit(ctx, ctx_of(i), bit)
    blob = enc.finish()
    dec = BinaryDecoder(blob)
    ctx2 = ContextSet(n_ctx)
    return [dec.decode_bit(ctx2, ctx_of(i)) for i in range(len(bits))], blob


class TestBinaryCoder:
    def test_empty_stream(self):
        enc = BinaryEncoder()
        blob = enc.finish()
        BinaryDecoder(blob)  # constructing on an empty stream must not fail

    def test_roundtrip_alternating(self):
        bits = [i & 1 for i in range(500)]
        decoded, _ = _roundtrip_bits(bits)
        assert decoded == bits

    def test_roundtrip_random(self):
        rng = random.Random(7)
        bits = [rng.randint(0, 1) for _ in range(2000)]
        decoded, _ = _roundtrip_bits(bits)
        assert decoded == bits

    def test_skewed_source_compresses(self):
        rng = random.Random(3)
        bits = [1 if rng.random() < 0.02 else 0 for _ in range(8000)]
        decoded, blob = _roundtrip_bits(bits, n_ctx=1)
        assert decoded == bits
        # H(0.02) ~= 0.14 bits/bin; allow generous slack for adaptation.
        assert len(blob) * 8 < 0.35 * len(bits)

    def test_bypass_roundtrip(self):
        rng = random.Random(11)
        bits = [rng.randint(0, 1) for _ in range(1000)]
        enc = BinaryEncoder()
        for bit in bits:
            enc.encode_bypass(bit)
        dec = BinaryDecoder(enc.finish())
        assert [dec.decode_bypass() for _ in bits] == bits

    def test_bypass_bits_roundtrip(self):
        values = [(0, 1), (5, 3), (255, 8), (1023, 10), (0, 4)]
        enc = BinaryEncoder()
        for value, width in values:
            enc.encode_bypass_bits(value, width)
        dec = BinaryDecoder(enc.finish())
        assert [dec.decode_bypass_bits(w) for _, w in values] == [v for v, _ in values]

    def test_bypass_is_one_bit_per_bin(self):
        enc = BinaryEncoder()
        for _ in range(8000):
            enc.encode_bypass(1)
        blob = enc.finish()
        assert abs(len(blob) * 8 - 8000) < 64

    def test_mixed_context_and_bypass(self):
        rng = random.Random(5)
        ops = [(rng.randint(0, 1), rng.randint(0, 1)) for _ in range(3000)]
        enc = BinaryEncoder()
        ctx = ContextSet(2)
        for kind, bit in ops:
            if kind:
                enc.encode_bypass(bit)
            else:
                enc.encode_bit(ctx, 0, bit)
        dec = BinaryDecoder(enc.finish())
        ctx2 = ContextSet(2)
        for kind, bit in ops:
            got = dec.decode_bypass() if kind else dec.decode_bit(ctx2, 0)
            assert got == bit

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=400))
    def test_property_roundtrip(self, bits):
        decoded, _ = _roundtrip_bits(bits, n_ctx=2)
        assert decoded == bits


class TestUEG:
    @pytest.mark.parametrize("max_prefix", [1, 3, 8])
    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_roundtrip(self, max_prefix, k):
        values = [0, 1, 2, 3, 7, 8, 15, 100, 4095]
        enc = BinaryEncoder()
        ctx = ContextSet(max_prefix)
        for value in values:
            enc.encode_ueg(ctx, 0, value, max_prefix, k)
        dec = BinaryDecoder(enc.finish())
        ctx2 = ContextSet(max_prefix)
        assert [dec.decode_ueg(ctx2, 0, max_prefix, k) for _ in values] == values

    def test_small_values_get_short(self):
        # A stream of zeros under an adaptive context approaches 0 bits.
        enc = BinaryEncoder()
        ctx = ContextSet(4)
        for _ in range(4000):
            enc.encode_ueg(ctx, 0, 0, 4)
        assert enc.bytes_written * 8 < 0.2 * 4000

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 16), max_size=60),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=3),
    )
    def test_property_roundtrip(self, values, max_prefix, k):
        enc = BinaryEncoder()
        ctx = ContextSet(max_prefix)
        for value in values:
            enc.encode_ueg(ctx, 0, value, max_prefix, k)
        dec = BinaryDecoder(enc.finish())
        ctx2 = ContextSet(max_prefix)
        assert [dec.decode_ueg(ctx2, 0, max_prefix, k) for _ in values] == values

    def test_context_reset(self):
        ctx = ContextSet(3)
        enc = BinaryEncoder()
        for _ in range(100):
            enc.encode_bit(ctx, 1, 1)
        ctx.reset()
        assert ctx.probs == ContextSet(3).probs
