"""The perf-regression sentinel behind ``--check``.

Covers the comparison semantics (self-normalized speedups, min-sample
guards, divergence vs regression classification) and the CLI wiring
(exit 0 against a freshly regenerated baseline, exit 3 against a
doctored one, exit 2 on divergence).
"""

import copy
import json

import pytest

from repro.analysis.bench import run_benchmark
from repro.analysis.regression import (
    EXIT_DIVERGENCE,
    EXIT_OK,
    EXIT_REGRESSION,
    compare_cluster_bench,
    compare_codec_bench,
    compare_serving_bench,
    format_comparison,
)
from repro.cli import main as cli_main


@pytest.fixture(scope="module")
def fresh_doc():
    """One real (tiny) bench run, reused by every test in the module."""
    return run_benchmark(size_mb=0.0625, qps=(26.0,), workers=2, repeats=2)


def _serving_doc(availability=1.0, requests=500, passed=True,
                 p50=5.0, p99=50.0, shed=12):
    slo = {
        "requests": requests,
        "availability": availability,
        "latency_ms": {"p50": p50, "p99": p99},
    }
    return {
        "chaos": {
            "slo": dict(slo),
            "invariant": {"passed": passed, "silent_corruptions": 0,
                          "untyped_errors": 0},
        },
        "serve_bench": {
            "sequential": dict(slo),
            "burst": {
                "threads": 8, "per_thread": 6, "elapsed_s": 0.3,
                "slo": {"availability": 0.75, "requests": 48},
                "broker": {"shed": shed},
            },
            "shed_typed": shed,
        },
    }


class TestCodecComparison:
    def test_fresh_vs_itself_passes(self, fresh_doc):
        report = compare_codec_bench(fresh_doc, fresh_doc)
        assert report["passed"] and report["exit_code"] == EXIT_OK
        assert report["regressions"] == 0 and report["divergences"] == 0
        # With matching config and repeats >= 2 the speedup floors and
        # byte checks actually ran rather than all guarding out.
        assert report["checked"] > 1

    def test_doctored_speedup_baseline_regresses(self, fresh_doc):
        doctored = copy.deepcopy(fresh_doc)
        doctored["summary"]["mean_encode_speedup"] *= 10
        report = compare_codec_bench(doctored, fresh_doc)
        assert not report["passed"]
        assert report["exit_code"] == EXIT_REGRESSION
        metrics = [f["metric"] for f in report["findings"]
                   if f["status"] == "regression"]
        assert metrics == ["mean_encode_speedup"]

    def test_doctored_native_speedup_regresses(self, fresh_doc):
        doctored = copy.deepcopy(fresh_doc)
        doctored["summary"]["median_native_encode_speedup"] *= 10
        report = compare_codec_bench(doctored, fresh_doc)
        assert report["exit_code"] == EXIT_REGRESSION
        metrics = [f["metric"] for f in report["findings"]
                   if f["status"] == "regression"]
        assert metrics == ["median_native_encode_speedup"]

    def test_v2_baseline_without_native_metric_passes(self, fresh_doc):
        # A pre-v3 baseline has no native-rung summary; the floor is
        # guarded by presence, so it skips rather than KeyErrors.
        old = copy.deepcopy(fresh_doc)
        old["schema"] = "llm265-bench-v2"
        del old["summary"]["median_native_encode_speedup"]
        report = compare_codec_bench(old, fresh_doc)
        assert report["exit_code"] == EXIT_OK

    def test_slack_loosens_the_floor(self, fresh_doc):
        doctored = copy.deepcopy(fresh_doc)
        doctored["summary"]["mean_encode_speedup"] = (
            fresh_doc["summary"]["mean_encode_speedup"] * 1.5
        )
        assert compare_codec_bench(
            doctored, fresh_doc, slack=1.0)["exit_code"] == EXIT_REGRESSION
        assert compare_codec_bench(
            doctored, fresh_doc, slack=2.0)["exit_code"] == EXIT_OK

    def test_divergent_fresh_run_is_divergence(self, fresh_doc):
        broken = copy.deepcopy(fresh_doc)
        broken["summary"]["all_identical"] = False
        report = compare_codec_bench(fresh_doc, broken)
        assert report["exit_code"] == EXIT_DIVERGENCE

    def test_min_repeats_guard_skips_speedups(self, fresh_doc):
        quick = copy.deepcopy(fresh_doc)
        quick["config"]["repeats"] = 1
        report = compare_codec_bench(fresh_doc, quick)
        assert report["exit_code"] == EXIT_OK
        skipped = [f for f in report["findings"] if f["status"] == "skipped"]
        assert any("min-sample guard" in f["detail"] for f in skipped)

    def test_config_mismatch_skips_not_compares(self, fresh_doc):
        other = copy.deepcopy(fresh_doc)
        other["config"]["size_mb"] = 99.0
        other["summary"]["mean_encode_speedup"] = 1e9  # would regress
        report = compare_codec_bench(other, fresh_doc)
        assert report["exit_code"] == EXIT_OK
        assert report["skipped"] >= 2

    def test_grown_bytes_flagged(self, fresh_doc):
        shrunk = copy.deepcopy(fresh_doc)
        for row in shrunk["results"]:
            for enc in row["encode"].values():
                enc["bytes"] = int(enc["bytes"] * 0.5)
        report = compare_codec_bench(shrunk, fresh_doc)
        assert report["exit_code"] == EXIT_REGRESSION
        assert any(f["metric"].endswith(".bytes")
                   for f in report["findings"]
                   if f["status"] == "regression")

    def test_invalid_slack_rejected(self, fresh_doc):
        with pytest.raises(ValueError):
            compare_codec_bench(fresh_doc, fresh_doc, slack=0)

    def test_format_names_failures(self, fresh_doc):
        doctored = copy.deepcopy(fresh_doc)
        doctored["summary"]["best_decode_speedup"] *= 10
        text = format_comparison(compare_codec_bench(doctored, fresh_doc))
        assert "REGRESSION" in text and "best_decode_speedup" in text
        assert text.endswith("FAIL")


class TestServingComparison:
    def test_identical_docs_pass(self):
        doc = _serving_doc()
        report = compare_serving_bench(doc, doc)
        assert report["passed"]

    def test_availability_drop_regresses(self):
        report = compare_serving_bench(
            _serving_doc(availability=1.0), _serving_doc(availability=0.9),
        )
        assert report["exit_code"] == EXIT_REGRESSION

    def test_contract_violation_is_divergence(self):
        report = compare_serving_bench(
            _serving_doc(), _serving_doc(passed=False),
        )
        assert report["exit_code"] == EXIT_DIVERGENCE

    def test_tail_blowup_regresses(self):
        report = compare_serving_bench(
            _serving_doc(p50=5.0, p99=25.0),
            _serving_doc(p50=5.0, p99=500.0),
        )
        assert report["exit_code"] == EXIT_REGRESSION
        assert any(f["metric"].endswith(".tail")
                   for f in report["findings"]
                   if f["status"] == "regression")

    def test_small_samples_guard(self):
        report = compare_serving_bench(
            _serving_doc(requests=10, availability=1.0),
            _serving_doc(requests=10, availability=0.5),
        )
        assert report["exit_code"] == EXIT_OK
        assert report["skipped"] >= 2

    def test_missing_sections_skip(self):
        report = compare_serving_bench({"chaos": None}, _serving_doc())
        assert report["exit_code"] == EXIT_OK
        assert report["skipped"] >= 1

    def test_lost_shedding_flagged(self):
        report = compare_serving_bench(
            _serving_doc(shed=12), _serving_doc(shed=0),
        )
        assert report["exit_code"] == EXIT_REGRESSION


def _cluster_doc(availability=1.0, requests=1200, p50=10.0, p99=80.0,
                 ratio=1.8, hedges=30, wins=20, violations=0,
                 chaos_availability=0.9995, chaos_passed=True):
    def point(shards):
        return {
            "shards": shards, "replication": 2, "requests": requests,
            "availability": availability,
            "latency_ms": {"p50": p50, "p99": p99, "p999": 3 * p99,
                           "max": 5 * p99},
            "router": {"hedges": hedges, "hedge_wins": wins},
        }

    return {
        "schema": "llm265-cluster-bench-v1",
        "shard_sweep": [point(2), point(4)],
        "hedge": {
            "shards": 4, "straggler_prob": 0.05,
            "straggler_delay_ms": 250.0,
            "no_hedge": point(4), "hedged": point(4),
            "p99_ratio": ratio,
        },
        "chaos": {
            "requests": requests,
            "invariant": {
                "availability": chaos_availability,
                "availability_slo": 0.999,
                "passed": chaos_passed,
            },
            "violation_count": violations,
        },
    }


class TestClusterComparison:
    def test_identical_docs_pass(self):
        doc = _cluster_doc()
        report = compare_cluster_bench(doc, doc)
        assert report["passed"] and report["exit_code"] == EXIT_OK
        assert report["checked"] >= 4

    def test_contract_violation_is_divergence(self):
        report = compare_cluster_bench(
            _cluster_doc(),
            _cluster_doc(violations=2, chaos_passed=False),
        )
        assert report["exit_code"] == EXIT_DIVERGENCE

    def test_sweep_availability_drop_regresses(self):
        report = compare_cluster_bench(
            _cluster_doc(availability=1.0), _cluster_doc(availability=0.9),
        )
        assert report["exit_code"] == EXIT_REGRESSION
        assert any(f["metric"].endswith(".availability")
                   for f in report["findings"]
                   if f["status"] == "regression")

    def test_tail_blowup_regresses(self):
        report = compare_cluster_bench(
            _cluster_doc(p50=10.0, p99=50.0),
            _cluster_doc(p50=10.0, p99=2000.0),
        )
        assert report["exit_code"] == EXIT_REGRESSION

    def test_hedge_ratio_is_gated_loosely(self):
        # Mild run-to-run wobble (ratio 1.8 -> 1.1, even 0.9) passes;
        # hedging making the tail distinctly worse does not.
        assert compare_cluster_bench(
            _cluster_doc(ratio=1.8), _cluster_doc(ratio=1.1),
        )["exit_code"] == EXIT_OK
        assert compare_cluster_bench(
            _cluster_doc(ratio=1.8), _cluster_doc(ratio=0.9),
        )["exit_code"] == EXIT_OK
        report = compare_cluster_bench(
            _cluster_doc(ratio=1.8), _cluster_doc(ratio=0.4),
        )
        assert report["exit_code"] == EXIT_REGRESSION
        assert any(f["metric"] == "hedge.p99_ratio"
                   for f in report["findings"]
                   if f["status"] == "regression")

    def test_disengaged_hedging_regresses(self):
        report = compare_cluster_bench(
            _cluster_doc(hedges=30), _cluster_doc(hedges=0),
        )
        assert report["exit_code"] == EXIT_REGRESSION
        assert any(f["metric"] == "hedge.fired"
                   for f in report["findings"]
                   if f["status"] == "regression")

    def test_few_hedges_on_both_sides_skips(self):
        report = compare_cluster_bench(
            _cluster_doc(hedges=2), _cluster_doc(hedges=1, ratio=0.1),
        )
        assert report["exit_code"] == EXIT_OK
        assert any("min-sample guard" in f["detail"]
                   for f in report["findings"]
                   if f["status"] == "skipped")

    def test_small_population_skips_hedge_gate(self):
        report = compare_cluster_bench(
            _cluster_doc(requests=50), _cluster_doc(requests=50, ratio=0.1),
        )
        # Availability/tail checks also guard out below MIN_REQUESTS.
        assert report["exit_code"] == EXIT_OK

    def test_missing_chaos_section_skips(self):
        fresh = _cluster_doc()
        fresh["chaos"] = None
        report = compare_cluster_bench(_cluster_doc(), fresh)
        assert report["exit_code"] == EXIT_OK
        assert any(f["metric"] == "chaos"
                   for f in report["findings"]
                   if f["status"] == "skipped")


class TestCliWiring:
    """`--check` exit codes, with the expensive run stubbed out."""

    def _patch_bench(self, monkeypatch, doc):
        import repro.analysis.bench as bench

        monkeypatch.setattr(bench, "run_benchmark",
                            lambda **kw: copy.deepcopy(doc))

    def test_bench_check_passes_against_fresh_baseline(
            self, fresh_doc, tmp_path, monkeypatch, capsys):
        self._patch_bench(monkeypatch, fresh_doc)
        baseline = tmp_path / "BENCH_codec.json"
        baseline.write_text(json.dumps(fresh_doc))
        code = cli_main(["bench", "--check", "--baseline", str(baseline),
                         "--repeats", "2"])
        assert code == EXIT_OK
        assert "verdict: PASS" in capsys.readouterr().out

    def test_bench_check_fails_against_doctored_baseline(
            self, fresh_doc, tmp_path, monkeypatch, capsys):
        self._patch_bench(monkeypatch, fresh_doc)
        doctored = copy.deepcopy(fresh_doc)
        doctored["summary"]["mean_encode_speedup"] *= 10
        baseline = tmp_path / "BENCH_codec.json"
        baseline.write_text(json.dumps(doctored))
        code = cli_main(["bench", "--check", "--baseline", str(baseline)])
        assert code == EXIT_REGRESSION
        assert "verdict: FAIL" in capsys.readouterr().out

    def test_bench_check_divergence_exit(
            self, fresh_doc, tmp_path, monkeypatch, capsys):
        broken = copy.deepcopy(fresh_doc)
        broken["summary"]["all_identical"] = False
        self._patch_bench(monkeypatch, broken)
        baseline = tmp_path / "BENCH_codec.json"
        baseline.write_text(json.dumps(fresh_doc))
        code = cli_main(["bench", "--check", "--baseline", str(baseline)])
        assert code == EXIT_DIVERGENCE

    def test_bench_check_missing_baseline(
            self, fresh_doc, tmp_path, monkeypatch, capsys):
        self._patch_bench(monkeypatch, fresh_doc)
        code = cli_main(["bench", "--check",
                         "--baseline", str(tmp_path / "nope.json")])
        assert code == 2
        assert "cannot load baseline" in capsys.readouterr().err

    def test_serve_bench_check(self, tmp_path, monkeypatch, capsys):
        import repro.serving.chaos as chaos

        doc = _serving_doc()
        monkeypatch.setattr(chaos, "run_serve_bench",
                            lambda **kw: copy.deepcopy(doc["serve_bench"]))
        baseline = tmp_path / "BENCH_serving.json"
        baseline.write_text(json.dumps(doc))
        code = cli_main(["serve-bench", "--check",
                         "--baseline", str(baseline)])
        assert code == EXIT_OK

        doctored = copy.deepcopy(doc)
        doctored["serve_bench"]["sequential"]["availability"] = 1.0
        crippled = copy.deepcopy(doc["serve_bench"])
        crippled["sequential"]["availability"] = 0.5
        monkeypatch.setattr(chaos, "run_serve_bench",
                            lambda **kw: copy.deepcopy(crippled))
        baseline.write_text(json.dumps(doctored))
        code = cli_main(["serve-bench", "--check",
                         "--baseline", str(baseline)])
        assert code == EXIT_REGRESSION

    def test_cluster_bench_check(self, tmp_path, monkeypatch, capsys):
        import repro.cluster.bench as cluster_bench

        doc = _cluster_doc()
        monkeypatch.setattr(cluster_bench, "run_cluster_bench",
                            lambda **kw: copy.deepcopy(doc))
        baseline = tmp_path / "BENCH_cluster.json"
        baseline.write_text(json.dumps(doc))
        code = cli_main(["cluster-bench", "--check",
                         "--baseline", str(baseline)])
        assert code == EXIT_OK
        assert "verdict: PASS" in capsys.readouterr().out

        broken = _cluster_doc(violations=1, chaos_passed=False)
        monkeypatch.setattr(cluster_bench, "run_cluster_bench",
                            lambda **kw: copy.deepcopy(broken))
        code = cli_main(["cluster-bench", "--check",
                         "--baseline", str(baseline)])
        assert code == EXIT_DIVERGENCE

    def test_cluster_bench_writes_output(self, tmp_path, monkeypatch):
        import repro.cluster.bench as cluster_bench

        doc = _cluster_doc()
        monkeypatch.setattr(cluster_bench, "run_cluster_bench",
                            lambda **kw: copy.deepcopy(doc))
        out = tmp_path / "out.json"
        assert cli_main(["cluster-bench", "--output", str(out)]) == EXIT_OK
        assert json.loads(out.read_text())["schema"] == doc["schema"]
