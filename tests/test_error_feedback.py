"""Tests for the error-feedback compressor wrapper."""

import numpy as np
import pytest

from repro.distributed import (
    Channel,
    DataParallelTrainer,
    ErrorFeedbackCompressor,
    RTNCompressor,
)
from repro.models.zoo import SPECS
from repro.nn.data import SyntheticCorpus
from repro.nn.transformer import GPT


class TestErrorFeedback:
    def test_error_carries_between_steps(self):
        inner = RTNCompressor(2, group_size=64)
        ef = ErrorFeedbackCompressor(inner)
        rng = np.random.default_rng(0)
        tensor = rng.normal(0, 1, (32, 64))
        first, _ = ef.compress(tensor, 0)
        assert tuple(tensor.shape) in ef._error
        # Second call on the same tensor includes the carried error.
        plain, _ = inner.compress(tensor, 1)
        second, _ = ef.compress(tensor, 1)
        assert not np.allclose(second, plain)

    def test_running_mean_converges_to_truth(self):
        """EF makes the *average* transmitted tensor unbiased."""
        inner = RTNCompressor(1, group_size=64)
        ef = ErrorFeedbackCompressor(inner)
        rng = np.random.default_rng(1)
        tensor = rng.normal(0, 1, (16, 64))
        total = np.zeros_like(tensor)
        steps = 60
        for step in range(steps):
            restored, _ = ef.compress(tensor, step)
            total += restored
        mean_error = np.mean((total / steps - tensor) ** 2)
        plain = inner.compress(tensor, 0)[0]
        plain_error = np.mean((plain - tensor) ** 2)
        assert mean_error < plain_error / 5

    def test_distinct_shapes_tracked_separately(self):
        ef = ErrorFeedbackCompressor(RTNCompressor(2))
        ef.compress(np.ones((4, 4)), 0)
        ef.compress(np.ones((8, 8)), 0)
        assert len(ef._error) == 2

    def test_improves_low_bit_training(self):
        spec = SPECS["tiny-sim"]
        corpus = SyntheticCorpus(spec.corpus)

        def run(compressor):
            model = GPT(spec.config, seed=0)
            trainer = DataParallelTrainer(
                model, num_workers=2, gradient_channel=Channel(compressor), lr=3e-3
            )
            history = trainer.train(corpus.batches(8, 30, seed=4), steps=30)
            return np.mean([h.loss for h in history[-5:]])

        plain = run(RTNCompressor(2, group_size=128))
        with_ef = run(ErrorFeedbackCompressor(RTNCompressor(2, group_size=128)))
        assert with_ef <= plain + 0.05
