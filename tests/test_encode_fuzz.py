"""Differential fuzz: native C encode kernels vs. the pure-Python coder.

The mirror of ``test_decode_fuzz.py`` for the encode side.  The
``encode="native"`` backend (fused write kernel, batched cost kernel,
reference-gather kernel) is only a valid substitute if the streams it
emits are *byte-identical* to the pure-Python paths across the whole
configuration space -- every profile, QP, RD search, and intra/inter
mode -- and the instrumented stats path reports the same exact
``tell_bits`` split.  This file drives both backends over seeded random
tensors and asserts exactly that.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.codec.decoder import decode_frames
from repro.codec.encoder import EncoderConfig, FrameEncoder
from repro.codec.entropy import native
from repro.codec.profiles import PROFILES_BY_NAME

pytestmark = pytest.mark.skipif(
    any(
        state != "ready"
        for name, state in native.kernel_status().items()
        if name in ("write", "cost", "refs")
    ),
    reason="native encode kernels unavailable (no compiler or pure-python)",
)

_QPS = (18.0, 30.0, 44.0)


def _frames(seed: int, n: int = 3, edge: int = 64):
    rng = np.random.default_rng(seed)
    base = (
        np.linspace(30, 220, edge)[None, :]
        + np.linspace(-40, 40, edge)[:, None]
    )
    return [
        np.clip(base + rng.normal(0, 20 + 10 * i, (edge, edge)), 0, 255).astype(
            np.uint8
        )
        for i in range(n)
    ]


def _pair(frames, **kw):
    """(native result, pure result) for one configuration."""
    native_res = FrameEncoder(EncoderConfig(encode="native", **kw)).encode(frames)
    pure_res = FrameEncoder(EncoderConfig(encode="python", **kw)).encode(frames)
    return native_res, pure_res


class TestEncodeFuzz:
    @pytest.mark.parametrize("profile", sorted(PROFILES_BY_NAME))
    @pytest.mark.parametrize("rd_search", ["vectorized", "legacy", "turbo"])
    def test_streams_identical_across_profiles(self, profile, rd_search):
        frames = _frames(7)
        for qp in _QPS:
            a, b = _pair(
                frames,
                profile=PROFILES_BY_NAME[profile],
                qp=qp,
                rd_search=rd_search,
            )
            assert a.data == b.data, f"{profile} {rd_search} qp={qp}"
            assert a.mse == b.mse

    @pytest.mark.parametrize("use_inter", [False, True])
    def test_streams_identical_inter_intra(self, use_inter):
        frames = _frames(21, n=4)
        for qp in _QPS:
            a, b = _pair(frames, qp=qp, use_inter=use_inter, rd_search="turbo")
            assert a.data == b.data, f"inter={use_inter} qp={qp}"

    def test_random_tensor_sweep(self):
        # Many small random tensors: different textures exercise
        # different mode decisions, block sizes, and level magnitudes.
        rng = np.random.default_rng(0xEC0DE)
        for trial in range(12):
            edge = int(rng.choice([32, 48, 64]))
            scale = float(rng.uniform(2, 80))
            frames = [
                np.clip(
                    rng.normal(128, scale, (edge, edge)), 0, 255
                ).astype(np.uint8)
                for _ in range(2)
            ]
            qp = float(rng.uniform(12, 46))
            a, b = _pair(frames, qp=qp, rd_search="turbo")
            assert a.data == b.data, f"trial {trial} edge={edge} qp={qp:.1f}"

    def test_streams_decode_identically(self):
        frames = _frames(33)
        a, b = _pair(frames, qp=26.0, rd_search="turbo")
        assert a.data == b.data
        for x, y in zip(decode_frames(a.data), decode_frames(b.data)):
            np.testing.assert_array_equal(x, y)

    def test_stats_tell_bits_identical(self):
        # The instrumented path measures the exact bit split with
        # tell_bits deltas; both backends must report the same ledger
        # (seconds excluded -- wall time is the one legitimately
        # backend-dependent field).
        frames = _frames(55)
        ledgers = []
        for encode in ("native", "python"):
            with telemetry.session():
                res = FrameEncoder(
                    EncoderConfig(encode=encode, qp=24.0, rd_search="turbo")
                ).encode(frames)
            ledgers.append(res)
        a, b = ledgers
        assert a.data == b.data
        assert a.stats is not None and b.stats is not None
        assert a.stats["bits"] == b.stats["bits"]
        assert a.stats["counts"] == b.stats["counts"]
        assert a.stats["qp"] == b.stats["qp"]

    def test_pure_python_env_forces_fallback(self, monkeypatch):
        # LLM265_PURE_PYTHON must pin every kernel off for new resolves;
        # streams still come out identical because the fallback is the
        # reference.
        frames = _frames(70, n=2)
        ref = FrameEncoder(EncoderConfig(qp=28.0)).encode(frames).data
        monkeypatch.setenv("LLM265_PURE_PYTHON", "1")
        for kernel in native._KERNELS.values():
            monkeypatch.setattr(kernel, "state", "unloaded")
            monkeypatch.setattr(kernel, "fn", None)
        assert native.kernel_status() == {
            name: "pure-python" for name in native._KERNELS
        }
        assert FrameEncoder(EncoderConfig(qp=28.0)).encode(frames).data == ref
