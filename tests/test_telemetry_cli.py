"""Tests for the telemetry-facing CLI surface: llm265 stats and --trace."""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.cli import main
from repro.models.synthetic_weights import weight_like


@pytest.fixture()
def tensor_file(tmp_path):
    path = tmp_path / "weight.npy"
    np.save(path, weight_like(64, 64, seed=5))
    return str(path)


class TestStatsCommand:
    def test_stats_prints_exact_bit_dissection(self, tensor_file, capsys):
        assert main(["stats", tensor_file, "--qp", "24"]) == 0
        out = capsys.readouterr().out
        assert "bitstream dissection" in out
        assert "exact" in out and "MISMATCH" not in out
        for element in ("header", "sig", "level", "flush"):
            assert element in out
        assert "plan" in out and "write" in out  # stage timings
        assert "bits/value" in out

    def test_stats_with_bitrate_target_shows_rate_control(self, tensor_file, capsys):
        assert main(["stats", tensor_file, "--bits", "3.0"]) == 0
        out = capsys.readouterr().out
        assert "ratecontrol.iterations" in out
        assert "exact" in out and "MISMATCH" not in out

    def test_stats_leaves_telemetry_disabled(self, tensor_file, capsys):
        assert main(["stats", tensor_file, "--qp", "24"]) == 0
        capsys.readouterr()
        assert telemetry.current() is None

    def test_stats_alternate_codec(self, tensor_file, capsys):
        assert main(["stats", tensor_file, "--qp", "24", "--codec", "h264"]) == 0
        out = capsys.readouterr().out
        assert "h264" in out


class TestTraceFlag:
    def test_trace_writes_valid_chrome_trace(self, tensor_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        blob = tmp_path / "w.lv265"
        code = main(
            ["--trace", str(trace), "compress", tensor_file, str(blob), "--qp", "20"]
        )
        assert code == 0
        capsys.readouterr()
        doc = json.loads(trace.read_text())
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        names = {e["name"] for e in spans}
        assert "tensor.encode" in names
        assert "frame" in names

    def test_trace_with_stats_reuses_one_session(self, tensor_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["--trace", str(trace), "stats", tensor_file, "--qp", "24"]) == 0
        out = capsys.readouterr().out
        assert "exact" in out
        doc = json.loads(trace.read_text())
        names = {e.get("name") for e in doc["traceEvents"]}
        assert "tensor.decode" in names  # stats decodes too, same session

    def test_trace_restores_disabled_state(self, tensor_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        blob = tmp_path / "w.lv265"
        main(["--trace", str(trace), "compress", tensor_file, str(blob), "--qp", "20"])
        capsys.readouterr()
        assert telemetry.current() is None


class TestInfoSummary:
    def test_info_shows_summary_line(self, tensor_file, tmp_path, capsys):
        blob = str(tmp_path / "w.lv265")
        main(["compress", tensor_file, blob, "--qp", "20"])
        capsys.readouterr()
        assert main(["info", blob]) == 0
        out = capsys.readouterr().out
        assert "CompressedTensor(" in out
        assert "budget_met=True" in out
        assert "shape" in out and "h265" in out
