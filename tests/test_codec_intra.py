"""Tests for intra-frame prediction."""

import numpy as np
import pytest

from repro.codec import intra


def _refs_from_frame(frame, y0, x0, n):
    mask = np.ones_like(frame, dtype=bool)
    return intra.gather_references(frame.astype(np.float64), mask, y0, x0, n)


class TestReferences:
    def test_all_unavailable_falls_back_to_midgrey(self):
        recon = np.zeros((16, 16))
        mask = np.zeros((16, 16), dtype=bool)
        top, left = intra.gather_references(recon, mask, 0, 0, 4)
        assert np.all(top == 128) and np.all(left == 128)

    def test_reference_lengths(self):
        frame = np.arange(256, dtype=np.float64).reshape(16, 16)
        top, left = _refs_from_frame(frame, 8, 8, 4)
        assert top.shape == (9,) and left.shape == (9,)

    def test_corner_and_rows_match_frame(self):
        frame = np.arange(256, dtype=np.float64).reshape(16, 16)
        top, left = _refs_from_frame(frame, 8, 8, 4)
        assert top[0] == frame[7, 7]  # corner
        assert np.array_equal(top[1:5], frame[7, 8:12])  # top row
        assert np.array_equal(left[1:5], frame[8:12, 7])  # left column

    def test_substitution_propagates_nearest(self):
        frame = np.full((16, 16), 200.0)
        mask = np.zeros((16, 16), dtype=bool)
        mask[:, :8] = True  # only the left half is reconstructed
        top, left = intra.gather_references(frame, mask, 8, 8, 4)
        # Top row is unavailable; it inherits from the corner/left walk.
        assert np.all(top == 200.0)

    def test_partial_top_row_extends_rightward(self):
        frame = np.zeros((16, 16))
        frame[7, :] = np.arange(16)
        mask = np.zeros((16, 16), dtype=bool)
        mask[7, :6] = True
        top, _ = intra.gather_references(frame, mask, 8, 0, 4)
        # Columns 0..5 available; beyond that the last value propagates.
        assert top[6] == 5.0
        assert top[7] == 5.0
        assert top[-1] == 5.0


class TestModes:
    def test_dc_is_mean_of_borders(self):
        frame = np.zeros((16, 16))
        frame[7, 8:12] = 100.0  # top row of the target block
        frame[8:12, 7] = 50.0  # left column
        top, left = _refs_from_frame(frame, 8, 8, 4)
        pred = intra.predict_dc(top, left, 4)
        assert np.allclose(pred, 75.0)

    def test_planar_is_smooth_interpolation(self):
        frame = np.tile(np.arange(16, dtype=np.float64) * 10, (16, 1))
        top, left = _refs_from_frame(frame, 8, 8, 4)
        pred = intra.predict_planar(top, left, 4)
        # Rows near the top follow the gradient; the blend toward the
        # bottom-left corner flattens lower rows but never reverses them.
        assert np.all(np.diff(pred[0]) > 0)
        assert np.all(np.diff(pred, axis=1) >= 0)

    def test_pure_vertical_copies_top_row(self):
        frame = np.zeros((16, 16))
        frame[7, :] = np.arange(16) * 3.0
        top, left = _refs_from_frame(frame, 8, 0, 8)
        pred = intra.predict_angular(top, left, 26, 8)  # mode 26 = vertical
        assert np.allclose(pred, np.tile(frame[7, 0:8], (8, 1)))

    def test_pure_horizontal_copies_left_column(self):
        frame = np.zeros((16, 16))
        frame[:, 7] = np.arange(16) * 2.0
        top, left = _refs_from_frame(frame, 0, 8, 8)
        pred = intra.predict_angular(top, left, 10, 8)  # mode 10 = horizontal
        assert np.allclose(pred, np.tile(frame[0:8, 7][:, None], (1, 8)))

    def test_diagonal_mode_follows_direction(self):
        # Mode 34 (angle +32) projects the top reference one step right per row.
        frame = np.zeros((16, 16))
        frame[7, :] = np.arange(16, dtype=np.float64)
        top, left = _refs_from_frame(frame, 8, 0, 4)
        pred = intra.predict_angular(top, left, 34, 4)
        assert pred[1, 0] == pytest.approx(pred[0, 1])

    @pytest.mark.parametrize("mode", range(2, 35))
    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_all_angular_modes_produce_finite_output(self, mode, n):
        rng = np.random.default_rng(mode * 100 + n)
        frame = rng.uniform(0, 255, (48, 48))
        top, left = _refs_from_frame(frame, 16, 16, n)
        pred = intra.predict(top, left, mode, n)
        assert pred.shape == (n, n)
        assert np.all(np.isfinite(pred))
        assert pred.min() >= -1 and pred.max() <= 256

    def test_mode_angle_bounds(self):
        assert intra.mode_angle(2) == 32
        assert intra.mode_angle(18) == -32
        assert intra.mode_angle(34) == 32
        with pytest.raises(ValueError):
            intra.mode_angle(0)

    def test_angular_predicts_stripes_exactly(self):
        """Channel-wise structure (vertical stripes) is captured by mode 26."""
        frame = np.tile(np.arange(32, dtype=np.float64) * 7 % 255, (32, 1))
        mask = np.ones((32, 32), dtype=bool)
        mask[8:, :] = False  # block itself not yet reconstructed
        top, left = intra.gather_references(frame, mask, 8, 8, 8)
        pred = intra.predict_angular(top, left, 26, 8)
        assert np.allclose(pred, frame[8:16, 8:16])


class TestMPM:
    def test_equal_angular_neighbors(self):
        mpm = intra.most_probable_modes(20, 20)
        assert mpm[0] == 20 and len(set(mpm)) == 3

    def test_equal_non_angular_neighbors(self):
        assert intra.most_probable_modes(intra.DC, intra.DC) == [
            intra.PLANAR,
            intra.DC,
            26,
        ]

    def test_missing_neighbors_default_to_dc(self):
        mpm = intra.most_probable_modes(None, None)
        assert len(mpm) == 3

    def test_distinct_neighbors_both_present(self):
        mpm = intra.most_probable_modes(5, 30)
        assert 5 in mpm and 30 in mpm and len(set(mpm)) == 3

    def test_wraparound_neighbour_modes(self):
        mpm = intra.most_probable_modes(2, 2)
        assert all(intra.ANGULAR_FIRST <= m <= intra.ANGULAR_LAST for m in mpm)
