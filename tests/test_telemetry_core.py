"""Tests for the repro.telemetry core: spans, counters, exact bit ledgers."""

import json
import threading

import numpy as np
import pytest

from repro import telemetry
from repro.codec.decoder import decode_frames
from repro.codec.encoder import EncoderConfig, encode_frames
from repro.models.synthetic_weights import weight_like
from repro.tensor.precision import quantize_to_uint8


@pytest.fixture()
def frame():
    return quantize_to_uint8(weight_like(64, 64, seed=11))[0]


class TestCore:
    def test_disabled_by_default(self):
        assert telemetry.current() is None
        assert not telemetry.enabled()

    def test_disabled_primitives_are_noops(self):
        telemetry.count("nope", 5)
        telemetry.observe("nope", 1.0)
        with telemetry.span("nope"):
            pass
        assert telemetry.current() is None

    def test_null_span_is_shared(self):
        assert telemetry.span("a") is telemetry.span("b")

    def test_session_installs_and_restores(self):
        assert telemetry.current() is None
        with telemetry.session() as registry:
            assert telemetry.current() is registry
            with telemetry.session() as inner:
                assert telemetry.current() is inner
            assert telemetry.current() is registry
        assert telemetry.current() is None

    def test_spans_nest_into_paths(self):
        with telemetry.session() as registry:
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    pass
                with telemetry.span("inner"):
                    pass
            with telemetry.span("solo"):
                pass
        assert set(registry.spans) == {"outer", "outer/inner", "solo"}
        assert registry.spans["outer"].calls == 1
        assert registry.spans["outer/inner"].calls == 2
        assert registry.spans["outer"].total_s >= registry.spans["outer/inner"].total_s

    def test_counters_and_histograms(self):
        with telemetry.session() as registry:
            telemetry.count("c", 2)
            telemetry.count("c")
            telemetry.observe("h", 1.0)
            telemetry.observe("h", 3.0)
        assert registry.counters["c"] == 3
        hist = registry.histograms["h"]
        assert hist.count == 2
        assert hist.mean == pytest.approx(2.0)
        assert hist.min == 1.0 and hist.max == 3.0

    def test_registry_is_thread_local(self):
        seen = {}

        def worker():
            seen["registry"] = telemetry.current()

        with telemetry.session():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["registry"] is None

    def test_reset_clears_but_keeps_registry(self):
        with telemetry.session() as registry:
            telemetry.count("c")
            with telemetry.span("s"):
                pass
            registry.reset()
            assert registry.counters == {}
            assert registry.spans == {}
            assert telemetry.current() is registry


class TestCodecInstrumentation:
    def test_disabled_encode_populates_nothing(self, frame):
        result = encode_frames([frame], EncoderConfig(qp=24))
        assert result.stats is None
        assert telemetry.current() is None

    def test_enabling_after_disabled_run_starts_empty(self, frame):
        encode_frames([frame], EncoderConfig(qp=24))  # telemetry off
        with telemetry.session() as registry:
            assert registry.counters == {}
            assert registry.spans == {}

    def test_bit_ledger_sums_exactly_to_stream_size(self, frame):
        with telemetry.session():
            result = encode_frames([frame], EncoderConfig(qp=24))
        bits = result.stats["bits"]
        assert sum(bits.values()) == 8 * len(result.data)
        assert bits["header"] == 8 * 21  # fixed header size (17 fields + CRC32)
        for element in ("sig", "level", "last", "flush"):
            assert bits[element] > 0

    def test_ledger_matches_registry_totals_for_single_encode(self, frame):
        with telemetry.session() as registry:
            result = encode_frames([frame], EncoderConfig(qp=24))
        for element, value in result.stats["bits"].items():
            assert registry.counters[f"encode.bits.{element}"] == value

    def test_counters_exact_across_roundtrip(self, frame):
        with telemetry.session() as registry:
            result = encode_frames([frame], EncoderConfig(qp=24))
            decoded = decode_frames(result.data)
        counters = registry.counters
        assert np.array_equal(decoded[0], decode_frames(result.data)[0])
        for structural in ("ctu", "cu.leaf", "cu.split", "mode.intra", "frames"):
            assert counters[f"encode.{structural}"] == counters[
                f"decode.{structural}"
            ], structural

    def test_qp_histogram_matches_dither(self, frame):
        with telemetry.session() as registry:
            encode_frames([frame], EncoderConfig(qp=24))
        hist = registry.histograms["encode.qp"]
        assert hist.count == registry.counters["encode.ctu"]
        assert hist.min >= 24.0 and hist.max <= 25.0

    def test_throughput_benchmark_shape_unchanged(self, frame):
        """EncodeResult stays compatible for existing callers."""
        result = encode_frames([frame], EncoderConfig(qp=24))
        assert result.bits_per_value > 0
        assert result.num_values == 64 * 64


class TestChromeTrace:
    def test_chrome_trace_export_is_valid_json(self, frame, tmp_path):
        path = tmp_path / "trace.json"
        with telemetry.session(trace=True) as registry:
            encode_frames([frame], EncoderConfig(qp=24))
            telemetry.write_chrome_trace(registry, str(path))
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        spans = [e for e in events if e.get("ph") == "X"]
        assert spans, "expected complete ('X') span events"
        for event in spans:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert "name" in event and "pid" in event and "tid" in event

    def test_trace_disabled_records_no_events(self, frame):
        with telemetry.session(trace=False) as registry:
            encode_frames([frame], EncoderConfig(qp=24))
        assert registry.events == []
        assert registry.spans  # aggregates still collected

    def test_event_cap_counts_drops(self):
        with telemetry.session(trace=True) as registry:
            registry.events = [{}] * telemetry.MAX_TRACE_EVENTS
            with telemetry.span("over"):
                pass
        assert registry.dropped_events == 1


class TestExport:
    def test_to_json_snapshot(self):
        with telemetry.session() as registry:
            telemetry.count("a.b", 4)
            telemetry.observe("h", 2.0)
            with telemetry.span("s"):
                pass
        doc = telemetry.to_json(registry)
        assert doc["counters"] == {"a.b": 4}
        assert doc["histograms"]["h"]["count"] == 1
        assert doc["spans"]["s"]["calls"] == 1

    def test_summary_table_mentions_everything(self):
        with telemetry.session() as registry:
            telemetry.count("my.counter", 4)
            telemetry.observe("my.hist", 2.0)
            with telemetry.span("my.span"):
                pass
        table = telemetry.summary_table(registry)
        assert "my.counter" in table
        assert "my.hist" in table
        assert "my.span" in table

    def test_summary_table_empty_registry(self):
        with telemetry.session() as registry:
            pass
        assert "empty" in telemetry.summary_table(registry)
