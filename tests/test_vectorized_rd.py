"""Equivalence and validity of the RD mode-search implementations.

Three search engines share one bitstream format:

- ``legacy``     -- the original scalar per-mode loop (reference).
- ``vectorized`` -- batched transform-domain costing.  With
  ``satd_prune=0`` it must pick the *same mode for every block* as the
  legacy search, which we assert via byte-identity of the streams (any
  decision difference changes the mode syntax elements and therefore
  the bytes).
- ``turbo``      -- two-pass whole-frame search.  Its decisions may
  differ slightly (pass 1 costs against source references), so it is
  held to decodability and a quality envelope, not identity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.codec.decoder import decode_frames
from repro.codec.encoder import EncoderConfig, FrameEncoder
from repro.codec.profiles import AV1_PROFILE, H264_PROFILE, H265_PROFILE

PROFILES = {"h264": H264_PROFILE, "h265": H265_PROFILE, "av1": AV1_PROFILE}


def _frames(n=3, h=64, w=64, seed=7):
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:h, 0:w]
    base = 120 + 60 * np.sin(xx / 9.0) + 40 * np.cos(yy / 13.0)
    return [
        np.clip(base + rng.normal(0, 18, (h, w)), 0, 255).astype(np.uint8)
        for _ in range(n)
    ]


def _encode(frames, **kw):
    return FrameEncoder(EncoderConfig(**kw)).encode(frames)


class TestVectorizedMatchesLegacy:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    @pytest.mark.parametrize("qp", [18.0, 27.0, 36.0])
    def test_byte_identical_across_profiles_and_qps(self, profile, qp):
        frames = _frames()
        fast = _encode(frames, profile=PROFILES[profile], qp=qp)
        slow = _encode(
            frames, profile=PROFILES[profile], qp=qp, rd_search="legacy"
        )
        assert fast.data == slow.data
        assert fast.mse == pytest.approx(slow.mse)

    def test_byte_identical_with_inter_prediction(self):
        frames = _frames(n=4)
        fast = _encode(frames, qp=27.0, use_inter=True)
        slow = _encode(frames, qp=27.0, use_inter=True, rd_search="legacy")
        assert fast.data == slow.data

    def test_byte_identical_with_fractional_qp(self):
        frames = _frames()
        fast = _encode(frames, qp=25.7)
        slow = _encode(frames, qp=25.7, rd_search="legacy")
        assert fast.data == slow.data

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_byte_identical_over_seeds(self, seed):
        frames = _frames(n=2, seed=seed)
        assert (
            _encode(frames, qp=27.0).data
            == _encode(frames, qp=27.0, rd_search="legacy").data
        )

    def test_fast_entropy_is_bit_exact(self):
        # The fused coefficient writer is an optimisation of the
        # primitive-call writer, never a format change.
        frames = _frames()
        fast = _encode(frames, qp=27.0, fast_entropy=True)
        slow = _encode(frames, qp=27.0, fast_entropy=False)
        assert fast.data == slow.data


class TestSatdPrune:
    def test_pruned_stream_decodes_and_is_close(self):
        frames = _frames()
        exact = _encode(frames, qp=27.0)
        pruned = _encode(frames, qp=27.0, satd_prune=4)
        decoded = decode_frames(pruned.data)
        assert len(decoded) == len(frames)
        # Pruning trims the candidate list, so quality may dip slightly
        # but must stay in the same regime as the exhaustive search.
        assert pruned.mse <= exact.mse * 1.25 + 1.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            EncoderConfig(satd_prune=-1)
        with pytest.raises(ValueError):
            EncoderConfig(rd_search="warp")


class TestTurbo:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_stream_decodes_on_every_profile(self, profile):
        frames = _frames()
        result = _encode(
            frames, profile=PROFILES[profile], qp=27.0, rd_search="turbo"
        )
        decoded = decode_frames(result.data)
        assert len(decoded) == len(frames)
        for got, src in zip(decoded, frames):
            assert got.shape == src.shape

    @pytest.mark.parametrize("qp", [18.0, 27.0, 36.0])
    def test_quality_tracks_exact_search(self, qp):
        # Two-pass decisions come from source-reference costing; the
        # final streams must stay within a few percent of the exact
        # search on both axes.
        frames = _frames()
        exact = _encode(frames, qp=qp)
        turbo = _encode(frames, qp=qp, rd_search="turbo")
        assert len(turbo.data) <= len(exact.data) * 1.05
        assert turbo.mse <= exact.mse * 1.05 + 0.5

    def test_reported_mse_matches_decoder(self):
        frames = _frames()
        result = _encode(frames, qp=27.0, rd_search="turbo")
        decoded = decode_frames(result.data)
        mse = float(
            np.mean(
                [
                    np.mean((d.astype(np.float64) - s.astype(np.float64)) ** 2)
                    for d, s in zip(decoded, frames)
                ]
            )
        )
        # Decoder output is uint8-rounded, so allow that quantisation.
        assert mse == pytest.approx(result.mse, abs=0.5)

    def test_telemetry_does_not_change_bytes(self):
        # The instrumented turbo path must take the same decisions as
        # the bare one -- observability is never allowed to perturb the
        # bitstream.
        frames = _frames()
        plain = _encode(frames, qp=27.0, rd_search="turbo")
        with telemetry.session():
            instrumented = _encode(frames, qp=27.0, rd_search="turbo")
        assert instrumented.data == plain.data

    def test_no_partition_and_fractional_qp(self):
        frames = _frames(n=2)
        flat = _encode(frames, qp=26.5, rd_search="turbo", use_partition=False)
        assert len(decode_frames(flat.data)) == len(frames)

    def test_inter_frames_fall_back_to_exact_planner(self):
        # Turbo's whole-frame pass is intra-only; inter frames route
        # through the per-leaf planner and must still round-trip.
        frames = _frames(n=4)
        result = _encode(frames, qp=27.0, rd_search="turbo", use_inter=True)
        assert len(decode_frames(result.data)) == len(frames)
