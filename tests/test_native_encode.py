"""Unit tests for the native encode kernels and their plumbing.

Covers, kernel by kernel, the exactness contracts the fuzz suite
(``test_encode_fuzz.py``) relies on at the stream level:

- the write kernel against the primitive-call entropy coder (bytes and
  adapted context banks);
- the cost kernel, flat and fused layouts, against the numpy quantizer
  (bitwise, all four outputs);
- the refs kernel against the original scalar boundary walk;
- the build pipeline: per-kernel status, cache GC accounting, and the
  degrade-once-with-one-event behaviour on build failure;
- the parallel-encode dispatch thresholds and fallback accounting;
- the ``encode=`` plumbing through config, codec, and serving rungs.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import telemetry
from repro.codec.encoder import (
    _PARALLEL_MIN_BYTES,
    _PARALLEL_MIN_SLICES,
    ENCODES,
    EncoderConfig,
    FrameEncoder,
    _level_rate_table,
    _pass1_err_costs,
    _quantize_costs,
)
from repro.codec.entropy import native
from repro.codec.entropy.arithmetic import BinaryEncoder
from repro.codec.intra import gather_references, gather_references_scalar
from repro.codec.syntax import CodecContexts, encode_coeff_block
from repro.parallel import ParallelConfig
from repro.serving.ladder import DEFAULT_LADDER, Rung
from repro.telemetry import flightrecorder
from repro.tensor.codec import TensorCodec

_READY = native.kernel_status()
needs_write = pytest.mark.skipif(
    _READY.get("write") != "ready", reason="write kernel unavailable"
)
needs_cost = pytest.mark.skipif(
    _READY.get("cost") != "ready", reason="cost kernel unavailable"
)
needs_refs = pytest.mark.skipif(
    _READY.get("refs") != "ready", reason="refs kernel unavailable"
)


def _blocks(seed: int = 0):
    rng = np.random.default_rng(seed)
    blocks = [
        rng.integers(-30, 30, (n, n)).astype(np.int64) for n in (4, 8, 16, 32)
    ]
    blocks.append(np.zeros((8, 8), dtype=np.int64))  # cbf=0 path
    sparse = np.zeros((16, 16), dtype=np.int64)
    sparse[0, 0] = 1
    sparse[15, 15] = -3
    blocks.append(sparse)
    big = np.zeros((4, 4), dtype=np.int64)
    big[0, 0] = 1 << 40  # long Exp-Golomb suffix
    big[3, 3] = -(1 << 33)
    blocks.append(big)
    return blocks


def _code(blocks, *, fast: bool, native_ok: bool):
    """(stream bytes, context banks) after coding ``blocks`` in order."""
    enc = BinaryEncoder()
    ctx = CodecContexts()
    for block in blocks:
        encode_coeff_block(enc, ctx, block, fast=fast, native_ok=native_ok)
    banks = [list(ctx.cbf.probs), list(ctx.last.probs),
             list(ctx.sig.probs), list(ctx.level.probs)]
    return enc.finish(), banks


class TestWriteKernel:
    @needs_write
    def test_matches_primitive_coder(self):
        blocks = _blocks(3)
        native_out = _code(blocks, fast=True, native_ok=True)
        fused_out = _code(blocks, fast=True, native_ok=False)
        primitive_out = _code(blocks, fast=False, native_ok=False)
        # Bytes AND every adapted context probability: the kernel codes
        # the cbf bin, the last-position UEG, and the full scan.
        assert native_out == fused_out == primitive_out

    @needs_write
    def test_interleaved_with_python_blocks(self):
        # Alternating native / pure blocks on one shared coder: the
        # written-back state must be exact mid-stream, not just at the
        # end.
        blocks = _blocks(9)
        enc_mixed = BinaryEncoder()
        ctx_mixed = CodecContexts()
        for index, block in enumerate(blocks):
            encode_coeff_block(
                enc_mixed, ctx_mixed, block, native_ok=bool(index % 2)
            )
        ref, _banks = _code(blocks, fast=True, native_ok=False)
        assert enc_mixed.finish() == ref

    @needs_write
    def test_scratch_overflow_raises(self, monkeypatch):
        # A broken sizing invariant must raise, never half-adapt the
        # shared context banks silently.
        monkeypatch.setattr(native, "_MAX_BINS_PER_COEFF", 0)
        monkeypatch.setattr(
            native, "_scratch", lambda cap: np.empty(max(cap, 1), dtype=np.uint8)
        )
        enc = BinaryEncoder()
        ctx = CodecContexts()
        block = np.full((8, 8), 1000, dtype=np.int64)
        with pytest.raises(RuntimeError):
            encode_coeff_block(enc, ctx, block, native_ok=True)


class TestCostKernel:
    @needs_cost
    @pytest.mark.parametrize("deadzone", [0.0, 0.25])
    def test_flat_matches_numpy_bitwise(self, deadzone):
        rng = np.random.default_rng(11)
        flat = rng.normal(0, 6, (40, 256))
        flat[rng.random(flat.shape) < 0.5] = 0.0
        flat[5] = 0.0  # all-zero row: last must be -1
        a = _quantize_costs(flat, deadzone, native_ok=True)
        b = _quantize_costs(flat, deadzone, native_ok=False)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    @needs_cost
    @pytest.mark.parametrize("deadzone", [0.0, 0.25])
    def test_fused_matches_numpy_bitwise(self, deadzone):
        rng = np.random.default_rng(13)
        cscaled = np.ascontiguousarray(rng.normal(0, 8, (10, 64)))
        pred = np.ascontiguousarray(rng.normal(0, 8, (10, 7, 64)))
        a = _pass1_err_costs(cscaled, pred, deadzone, native_ok=True)
        b = _pass1_err_costs(cscaled, pred, deadzone, native_ok=False)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    @needs_cost
    def test_huge_magnitudes_clamp_to_table_top(self):
        table = _level_rate_table()
        flat = np.array([[1e9, -1e9, 0.0, float(len(table))]])
        a = _quantize_costs(flat, 0.0, native_ok=True)
        b = _quantize_costs(flat, 0.0, native_ok=False)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    @needs_cost
    def test_width_beyond_stack_buffer_falls_back(self):
        # The kernel's level buffer covers every profile (64x64 = 4096);
        # wider rows return None and the caller uses numpy.
        table = _level_rate_table()
        assert native.cost(np.zeros((2, 4097)), 0.0, table) is None

    @needs_cost
    def test_fused_rejects_noncontiguous(self):
        table = _level_rate_table()
        cscaled = np.zeros((4, 128))[:, ::2]
        pred = np.zeros((4, 3, 64))
        assert native.cost_fused(cscaled, pred, 0.0, table) is None


class TestRefsKernel:
    @needs_refs
    def test_fuzz_against_scalar_walk(self):
        rng = np.random.default_rng(17)
        for _ in range(150):
            h = int(rng.integers(8, 80))
            w = int(rng.integers(8, 80))
            recon = rng.normal(128, 40, (h, w))
            mask = rng.random((h, w)) < rng.random()
            n = int(rng.choice([4, 8, 16, 32]))
            y0 = int(rng.integers(-4, h + 4))
            x0 = int(rng.integers(-4, w + 4))
            got = native.refs(recon, mask, y0, x0, n)
            assert got is not None
            top, left = got
            ref_top, ref_left = gather_references_scalar(recon, mask, y0, x0, n)
            np.testing.assert_array_equal(top, ref_top)
            np.testing.assert_array_equal(left, ref_left)

    @needs_refs
    def test_all_unavailable_is_midgrey(self):
        recon = np.zeros((16, 16))
        mask = np.zeros((16, 16), dtype=bool)
        top, left = gather_references(recon, mask, 0, 0, 8)
        assert (top == 128.0).all() and (left == 128.0).all()

    @needs_refs
    def test_guards_fall_back(self):
        mask = np.ones((16, 16), dtype=bool)
        # Wrong dtype and oversized block both decline, never crash.
        assert native.refs(np.zeros((16, 16), np.float32), mask, 0, 0, 4) is None
        assert native.refs(np.zeros((16, 16)), mask, 0, 0, 600) is None


class TestBuildPipeline:
    def test_kernel_status_shape(self):
        status = native.kernel_status(resolve=False)
        assert set(status) == {"scan", "write", "cost", "refs"}
        allowed = {"unloaded", "building", "ready", "pure-python",
                   "no-compiler", "failed"}
        assert set(status.values()) <= allowed

    def test_cache_gc_prunes_stale_objects(self, monkeypatch):
        os.makedirs(native._BUILD_DIR, exist_ok=True)
        stale = os.path.join(native._BUILD_DIR, "write_kernel_0000dead0000.so")
        keep = os.path.join(native._BUILD_DIR, "notes.txt")
        for path in (stale, keep):
            with open(path, "w") as fh:
                fh.write("x")
        try:
            monkeypatch.setattr(native, "_pruned", False)
            with telemetry.session() as registry:
                removed = native._prune_stale()
            assert removed >= 1
            assert not os.path.exists(stale)
            assert os.path.exists(keep)  # only .so files are GC'd
            assert registry.counters.get("native.cache_pruned", 0) >= 1
            # Live kernels survived the sweep.
            for kernel in native._KERNELS.values():
                live = os.path.join(
                    native._BUILD_DIR,
                    f"{kernel.name}_kernel_{native._source_tag(kernel)}.so",
                )
                if kernel.state == "ready":
                    assert os.path.exists(live)
        finally:
            for path in (stale, keep):
                if os.path.exists(path):
                    os.unlink(path)

    def test_gc_runs_once_per_process(self, monkeypatch):
        monkeypatch.setattr(native, "_pruned", True)
        assert native._prune_stale() == 0

    def test_build_failure_degrades_with_one_event(self, monkeypatch):
        # The pure-python opt-out short-circuits before any build is
        # attempted; lift it so the failure path actually runs.
        monkeypatch.delenv("LLM265_PURE_PYTHON", raising=False)
        kernel = native._KERNELS["write"]
        monkeypatch.setattr(kernel, "state", "unloaded")
        monkeypatch.setattr(kernel, "fn", None)

        def boom(_kernel):
            raise FileNotFoundError("no C compiler on PATH")

        monkeypatch.setattr(native, "_build_and_load", boom)
        recorder = flightrecorder.FlightRecorder()
        previous = flightrecorder.set_recorder(recorder)
        try:
            with telemetry.session() as registry:
                assert native._resolve("write") is None
                assert kernel.state == "no-compiler"
                # Repeated resolves degrade silently: still one event.
                assert native._resolve("write") is None
                events = [
                    e for e in recorder.snapshot()
                    if e["kind"] == "native.build_failed"
                ]
                assert len(events) == 1
                assert events[0]["fields"]["kernel"] == "write"
                assert registry.counters.get("native.build_failed") == 1
        finally:
            flightrecorder.set_recorder(previous)

    def test_missing_kernel_never_blocks_encode(self, monkeypatch):
        # encode="native" with the write/cost kernels unavailable is the
        # pure path with the same bytes, not an error.
        frames = [np.full((32, 32), 90, dtype=np.uint8)]
        ref = FrameEncoder(EncoderConfig(qp=24.0, encode="python")).encode(frames)
        monkeypatch.setattr(native, "write", lambda *a, **k: False)
        monkeypatch.setattr(native, "cost", lambda *a, **k: None)
        monkeypatch.setattr(native, "cost_fused", lambda *a, **k: None)
        got = FrameEncoder(EncoderConfig(qp=24.0, encode="native")).encode(frames)
        assert got.data == ref.data


class TestParallelDispatch:
    def test_thresholds_pinned(self):
        # The dispatch gate (these constants + the >1 effective CPU
        # guard) is what backs the "parallel encode never loses to
        # serial" claim; changing either needs a deliberate re-measure.
        assert _PARALLEL_MIN_SLICES == 4
        assert _PARALLEL_MIN_BYTES == 1 << 16

    @staticmethod
    def _tiny_frames(n):
        rng = np.random.default_rng(23)
        return [
            rng.integers(0, 255, (32, 32)).astype(np.uint8) for _ in range(n)
        ]

    def test_below_threshold_falls_back_serial(self):
        frames = self._tiny_frames(2)  # < MIN_SLICES and < MIN_BYTES
        par = ParallelConfig(workers=2, executor="thread")
        with telemetry.session() as registry:
            got = FrameEncoder(
                EncoderConfig(qp=24.0, parallel=par)
            ).encode(frames)
        assert registry.counters.get("encode.parallel_threshold_fallbacks") == 1
        serial = FrameEncoder(EncoderConfig(qp=24.0)).encode(frames)
        assert got.data == serial.data

    def test_single_cpu_falls_back_serial(self, monkeypatch):
        import repro.codec.encoder as encoder_mod

        monkeypatch.setattr(encoder_mod, "_effective_cpus", lambda: 1)
        frames = [
            np.zeros((128, 128), dtype=np.uint8) for _ in range(_PARALLEL_MIN_SLICES)
        ]  # above both size thresholds; the CPU guard alone must trip
        par = ParallelConfig(workers=2, executor="thread")
        with telemetry.session() as registry:
            got = FrameEncoder(
                EncoderConfig(qp=24.0, parallel=par)
            ).encode(frames)
        assert registry.counters.get("encode.parallel_threshold_fallbacks") == 1
        serial = FrameEncoder(EncoderConfig(qp=24.0)).encode(frames)
        assert got.data == serial.data

    def test_parallel_stream_identical_when_dispatched(self, monkeypatch):
        import repro.codec.encoder as encoder_mod

        monkeypatch.setattr(encoder_mod, "_effective_cpus", lambda: 4)
        rng = np.random.default_rng(29)
        frames = [
            rng.integers(0, 255, (128, 128)).astype(np.uint8)
            for _ in range(_PARALLEL_MIN_SLICES)
        ]
        par = ParallelConfig(workers=2, executor="thread")
        with telemetry.session() as registry:
            got = FrameEncoder(
                EncoderConfig(qp=24.0, parallel=par)
            ).encode(frames)
            fallbacks = registry.counters.get(
                "encode.parallel_threshold_fallbacks", 0
            )
        assert fallbacks == 0  # this one actually fanned out
        serial = FrameEncoder(EncoderConfig(qp=24.0)).encode(frames)
        assert got.data == serial.data and got.mse == serial.mse


class TestEncodePlumbing:
    def test_encoder_config_validates(self):
        assert EncoderConfig(encode="python").encode == "python"
        with pytest.raises(ValueError):
            EncoderConfig(encode="bogus")

    def test_tensor_codec_forwards_backend(self):
        with pytest.raises(ValueError):
            TensorCodec(encode="bogus")
        tensor = np.linspace(-1, 1, 64 * 64, dtype=np.float32).reshape(64, 64)
        a = TensorCodec(tile=64, encode="native").encode(tensor, qp=24.0)
        b = TensorCodec(tile=64, encode="python").encode(tensor, qp=24.0)
        assert a.data == b.data

    def test_ladder_rungs_pin_backends(self):
        with pytest.raises(ValueError):
            Rung("bad", "turbo", None, encode="bogus")
        by_name = {rung.name: rung for rung in DEFAULT_LADDER}
        assert by_name["turbo"].encode == "native"
        assert by_name["vectorized"].encode == "native"
        # The floor rung serves with no fast-path code at all.
        assert by_name["legacy"].encode == "python"

    def test_encodes_tuple_is_closed(self):
        assert ENCODES == ("native", "python")
