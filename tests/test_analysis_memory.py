"""Unit tests for the deployment-memory arithmetic."""

import pytest

from repro.analysis.memory import (
    DEEPSEEK_V3,
    LLAMA2_7B,
    LLAMA3_70B,
    LLMShape,
    kv_cache_bytes,
    paper_deployment_table,
    per_device_memory,
    weight_bytes,
)


class TestShapes:
    def test_head_dims(self):
        assert LLAMA3_70B.head_dim == 128
        assert LLAMA3_70B.kv_dim == 1024  # 8 KV heads (GQA)
        assert LLAMA2_7B.kv_dim == LLAMA2_7B.hidden  # full MHA

    def test_deepseek_intro_claim(self):
        """Intro: DeepSeek-V3-671B needs at least 671 GB at 8 bits."""
        assert weight_bytes(DEEPSEEK_V3, 8.0) == pytest.approx(671e9, rel=0.01)


class TestWeightBytes:
    def test_linear_in_bits(self):
        assert weight_bytes(LLAMA2_7B, 8.0) == weight_bytes(LLAMA2_7B, 16.0) / 2

    def test_fractional_bits(self):
        assert weight_bytes(LLAMA2_7B, 2.9) == pytest.approx(
            LLAMA2_7B.params * 2.9 / 8
        )

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            weight_bytes(LLAMA2_7B, -1)


class TestKVCache:
    def test_linear_in_context(self):
        short = kv_cache_bytes(LLAMA3_70B, 1000)
        long = kv_cache_bytes(LLAMA3_70B, 2000)
        assert long == pytest.approx(2 * short)

    def test_gqa_shrinks_cache(self):
        """Grouped-query attention: 70B has a *smaller* cache per token
        than a full-MHA model of the same width would."""
        full_mha = LLMShape("x", 70e9, 80, 8192, 64, 64)
        assert kv_cache_bytes(LLAMA3_70B, 1024) < kv_cache_bytes(full_mha, 1024)

    def test_paper_40gb_claim(self):
        gb = kv_cache_bytes(LLAMA3_70B, 128 * 1024, 16.0) / 1e9
        assert gb == pytest.approx(42.9, abs=0.5)  # paper rounds to 40


class TestPerDevice:
    def test_splits_evenly(self):
        one = per_device_memory(LLAMA3_70B, 1, 1024, 2.9, 2.9)
        four = per_device_memory(LLAMA3_70B, 4, 1024, 2.9, 2.9)
        assert four["total_bytes"] == pytest.approx(one["total_bytes"] / 4)

    def test_paper_8gb_per_device(self):
        table = paper_deployment_table()
        assert table["per_device_gb"] < 8.6

    def test_validation(self):
        with pytest.raises(ValueError):
            per_device_memory(LLAMA3_70B, 0, 1024, 2.9, 2.9)
