"""The fast decode path: two-phase decoder, fused scan, decode ladder.

The contract under test (ISSUE 5 tentpole): the vectorized plan ->
reconstruct decoder -- through the fused pure-Python scan loop AND the
optional native scan kernel -- is *byte-identical* to the legacy
interleaved decoder on every profile, QP, and prediction mode,
including the decoder state and context probabilities it leaves
behind.  Plus the dispatch policy around it: parallel decode falls
back to serial below the slice/byte/CPU thresholds (pinned here), the
``decode=`` knob plumbs through every public layer, and the
``decode.*`` telemetry ledger is published.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.telemetry as telemetry
from repro.codec import decoder as decoder_mod
from repro.codec import syntax
from repro.codec.decoder import (
    DECODES,
    FrameDecoder,
    decode_frames,
    decode_frames_with_report,
)
from repro.codec.encoder import EncoderConfig, FrameEncoder
from repro.codec.entropy import native
from repro.codec.entropy.arithmetic import BinaryDecoder, BinaryEncoder
from repro.codec.profiles import AV1_PROFILE, H264_PROFILE, H265_PROFILE
from repro.codec.syntax import (
    CodecContexts,
    decode_coeff_block,
    decode_coeff_block_scanned,
    encode_coeff_block,
)
from repro.codec.transform import zigzag_unscan
from repro.parallel import ParallelConfig, pool_stats, warm_pool
from repro.serving.ladder import DEFAULT_LADDER, Rung
from repro.serving.service import CodecService
from repro.telemetry import DECODE_STAGES, DecodeStats
from repro.tensor.checkpoint import load_checkpoint, save_checkpoint
from repro.tensor.codec import TensorCodec


def _frames(n=4, h=64, w=64, seed=11):
    rng = np.random.default_rng(seed)
    base = np.linspace(40, 200, w)[None, :] + np.linspace(-30, 30, h)[:, None]
    return [
        np.clip(base + rng.normal(0, 25, (h, w)), 0, 255).astype(np.uint8)
        for _ in range(n)
    ]


def _tensor(seed=5, edge=64):
    rng = np.random.default_rng(seed)
    u = rng.standard_normal((edge, 4))
    v = rng.standard_normal((4, edge))
    return (u @ v + 0.2 * rng.standard_normal((edge, edge))).astype(np.float32)


def _coeff_stream(seed=3, blocks=12, n=8, spread=9):
    """Encode `blocks` random coefficient blocks; return (data, levels)."""
    rng = np.random.default_rng(seed)
    enc = BinaryEncoder()
    ctx = CodecContexts()
    all_levels = []
    for _ in range(blocks):
        levels = rng.integers(-spread, spread + 1, size=(n, n))
        levels[rng.random((n, n)) < 0.6] = 0
        all_levels.append(levels.astype(np.int64))
        encode_coeff_block(enc, ctx, all_levels[-1])
    return enc.finish(), all_levels


def _force_pure(monkeypatch):
    monkeypatch.setattr(native, "available", lambda: False)


# -- fused scan loop vs. the primitive sequence ------------------------


class TestFusedScan:
    @pytest.mark.parametrize("force_pure", [True, False])
    def test_scanned_decode_matches_primitives(self, monkeypatch, force_pure):
        if force_pure:
            _force_pure(monkeypatch)
        elif not native.available():
            pytest.skip("native scan kernel unavailable")
        for n in (4, 8, 16):
            data, all_levels = _coeff_stream(seed=n, n=n)
            ref = BinaryDecoder(data)
            ref_ctx = CodecContexts()
            fast = BinaryDecoder(data)
            fast_ctx = CodecContexts()
            for levels in all_levels:
                a = decode_coeff_block(ref, ref_ctx, n)
                scanned = decode_coeff_block_scanned(fast, fast_ctx, n)
                b = (
                    np.zeros((n, n), dtype=np.int64)
                    if scanned is None
                    else zigzag_unscan(scanned, n)
                )
                np.testing.assert_array_equal(a, levels)
                np.testing.assert_array_equal(b, levels)
                # The coder state and every adapted context must agree
                # after each block, or later blocks would diverge.
                assert (fast._pos, fast._range, fast._code) == (
                    ref._pos,
                    ref._range,
                    ref._code,
                )
                assert fast_ctx.sig.probs == ref_ctx.sig.probs
                assert fast_ctx.level.probs == ref_ctx.level.probs
                assert fast_ctx.last.probs == ref_ctx.last.probs

    def test_scan_bins_counted(self):
        data, _ = _coeff_stream()
        dec = BinaryDecoder(data)
        ctx = CodecContexts()
        for _ in range(12):
            decode_coeff_block_scanned(dec, ctx, 8)
        assert dec.scan_bins > 0

    @pytest.mark.skipif(
        not native.available(), reason="native scan kernel unavailable"
    )
    def test_native_and_pure_loops_agree(self, monkeypatch):
        data, _ = _coeff_stream(seed=17, blocks=20, spread=40)
        nat = BinaryDecoder(data)
        nat_ctx = CodecContexts()
        nat_blocks = [decode_coeff_block_scanned(nat, nat_ctx, 8) for _ in range(20)]
        _force_pure(monkeypatch)
        pure = BinaryDecoder(data)
        pure_ctx = CodecContexts()
        pure_blocks = [
            decode_coeff_block_scanned(pure, pure_ctx, 8) for _ in range(20)
        ]
        for a, b in zip(nat_blocks, pure_blocks):
            np.testing.assert_array_equal(a, b)
        assert (nat._pos, nat._range, nat._code, nat.scan_bins) == (
            pure._pos,
            pure._range,
            pure._code,
            pure.scan_bins,
        )
        assert nat_ctx.sig.probs == pure_ctx.sig.probs
        assert nat_ctx.level.probs == pure_ctx.level.probs


# -- whole-stream identity ---------------------------------------------


class TestVectorizedIdentity:
    @pytest.mark.parametrize(
        "profile", [H264_PROFILE, H265_PROFILE, AV1_PROFILE]
    )
    @pytest.mark.parametrize("qp", [10.0, 24.0, 38.0])
    def test_identity_across_profiles_and_qps(self, profile, qp):
        frames = _frames()
        data = FrameEncoder(EncoderConfig(profile=profile, qp=qp)).encode(
            frames
        ).data
        legacy = decode_frames(data, decode="legacy")
        fast = decode_frames(data, decode="vectorized")
        assert len(legacy) == len(fast)
        for a, b in zip(legacy, fast):
            np.testing.assert_array_equal(a, b)

    def test_identity_with_inter_prediction(self):
        frames = _frames(seed=23)
        data = FrameEncoder(EncoderConfig(qp=22.0, use_inter=True)).encode(
            frames
        ).data
        for a, b in zip(
            decode_frames(data, decode="legacy"),
            decode_frames(data, decode="vectorized"),
        ):
            np.testing.assert_array_equal(a, b)

    def test_identity_fractional_qp(self):
        frames = _frames(seed=31)
        data = FrameEncoder(EncoderConfig(qp=25.37)).encode(frames).data
        for a, b in zip(
            decode_frames(data, decode="legacy"),
            decode_frames(data, decode="vectorized"),
        ):
            np.testing.assert_array_equal(a, b)

    def test_identity_pure_python_fallback(self, monkeypatch):
        _force_pure(monkeypatch)
        frames = _frames(seed=41)
        data = FrameEncoder(EncoderConfig(qp=24.0)).encode(frames).data
        for a, b in zip(
            decode_frames(data, decode="legacy"),
            decode_frames(data, decode="vectorized"),
        ):
            np.testing.assert_array_equal(a, b)

    def test_concealment_reports_identical(self):
        frames = _frames(seed=7)
        data = bytearray(FrameEncoder(EncoderConfig(qp=24.0)).encode(frames).data)
        data[len(data) // 2] ^= 0x40  # damage one slice body
        legacy_frames, legacy_report = decode_frames_with_report(
            bytes(data), decode="legacy"
        )
        fast_frames, fast_report = decode_frames_with_report(
            bytes(data), decode="vectorized"
        )
        assert legacy_report.concealed == fast_report.concealed
        assert legacy_report.total_slices == fast_report.total_slices
        assert legacy_report.concealed  # the flip actually hit something
        for a, b in zip(legacy_frames, fast_frames):
            np.testing.assert_array_equal(a, b)


# -- parallel dispatch policy ------------------------------------------


class TestParallelDecodeThresholds:
    def test_threshold_constants_pinned(self):
        # Chosen from measurement (docs/PERFORMANCE.md): below 4 slices
        # or 32 KiB of payload, fan-out overhead beats the decode win.
        assert decoder_mod._PARALLEL_MIN_SLICES == 4
        assert decoder_mod._PARALLEL_MIN_BYTES == 32768

    def _big_stream(self):
        # Noisy frames so the payload clears the 32 KiB byte threshold.
        rng = np.random.default_rng(5)
        frames = [
            rng.integers(0, 256, (128, 128)).astype(np.uint8) for _ in range(4)
        ]
        return FrameEncoder(EncoderConfig(qp=18.0)).encode(frames).data

    def test_dispatches_above_thresholds(self, monkeypatch):
        monkeypatch.setattr(decoder_mod, "_effective_cpus", lambda: 8)
        data = self._big_stream()
        pool = ParallelConfig(workers=2, executor="thread")
        before = pool_stats()["dispatches"]
        par = decode_frames(data, parallel=pool)
        assert pool_stats()["dispatches"] == before + 1
        for a, b in zip(decode_frames(data), par):
            np.testing.assert_array_equal(a, b)

    def test_small_slice_count_falls_back(self, monkeypatch):
        monkeypatch.setattr(decoder_mod, "_effective_cpus", lambda: 8)
        frames = _frames(n=2)
        data = FrameEncoder(EncoderConfig(qp=24.0)).encode(frames).data
        pool = ParallelConfig(workers=2, executor="thread")
        before = pool_stats()["dispatches"]
        with telemetry.session() as registry:
            decode_frames(data, parallel=pool)
        assert pool_stats()["dispatches"] == before
        assert registry.counters.get("decode.parallel_threshold_fallbacks") == 1

    def test_small_payload_falls_back(self, monkeypatch):
        monkeypatch.setattr(decoder_mod, "_effective_cpus", lambda: 8)
        frames = _frames(n=4)  # smooth 64x64 frames: well under 32 KiB
        data = FrameEncoder(EncoderConfig(qp=30.0)).encode(frames).data
        assert len(data) < decoder_mod._PARALLEL_MIN_BYTES
        pool = ParallelConfig(workers=2, executor="thread")
        before = pool_stats()["dispatches"]
        with telemetry.session() as registry:
            decode_frames(data, parallel=pool)
        assert pool_stats()["dispatches"] == before
        assert registry.counters.get("decode.parallel_threshold_fallbacks") == 1

    def test_single_cpu_falls_back(self, monkeypatch):
        monkeypatch.setattr(decoder_mod, "_effective_cpus", lambda: 1)
        data = self._big_stream()
        pool = ParallelConfig(workers=2, executor="thread")
        before = pool_stats()["dispatches"]
        with telemetry.session() as registry:
            serial = decode_frames(data)
            par = decode_frames(data, parallel=pool)
        assert pool_stats()["dispatches"] == before
        assert registry.counters.get("decode.parallel_threshold_fallbacks") == 1
        for a, b in zip(serial, par):
            np.testing.assert_array_equal(a, b)

    def test_warm_pool_is_idempotent(self):
        pool = ParallelConfig(workers=2, executor="thread")
        warm_pool(pool)  # may or may not be the first warm-up this run
        assert warm_pool(pool) is False  # second call: already warm
        assert warm_pool(None) is False
        assert warm_pool(ParallelConfig(workers=4, executor="serial")) is False


# -- decode= plumbing ---------------------------------------------------


class TestDecodePlumbing:
    def test_frame_decoder_rejects_unknown_mode(self):
        data = FrameEncoder(EncoderConfig(qp=24.0)).encode(_frames(n=1)).data
        with pytest.raises(ValueError, match="decode"):
            FrameDecoder(data, decode="bogus")
        with pytest.raises(ValueError, match="decode"):
            decode_frames(data, decode="bogus")

    def test_tensor_codec_decode_modes_agree(self):
        tensor = _tensor()
        for mode in DECODES:
            codec = TensorCodec(tile=32, decode=mode)
            assert codec.decode_mode == mode
        compressed = TensorCodec(tile=32).encode(tensor, qp=24.0)
        out = {
            mode: TensorCodec(tile=32, decode=mode).decode(compressed)
            for mode in DECODES
        }
        np.testing.assert_array_equal(out["vectorized"], out["legacy"])
        with pytest.raises(ValueError, match="decode"):
            TensorCodec(decode="bogus")

    def test_checkpoint_decode_param(self, tmp_path):
        path = str(tmp_path / "model.llmckpt")
        save_checkpoint({"w": _tensor(seed=9)}, path)
        a = load_checkpoint(path, decode="legacy")
        b = load_checkpoint(path, decode="vectorized")
        np.testing.assert_array_equal(a["w"], b["w"])

    def test_rung_decode_field(self):
        with pytest.raises(ValueError, match="decode"):
            Rung("x", "turbo", decode="bogus")
        assert [rung.decode for rung in DEFAULT_LADDER] == [
            "vectorized",
            "vectorized",
            "legacy",
        ]

    def test_service_builds_per_rung_decoders(self):
        service = CodecService()
        for rung in DEFAULT_LADDER:
            assert service._codecs[rung.name].decode_mode == rung.decode
        assert service._conceal_codec.decode_mode == "legacy"
        tensor = _tensor(seed=13, edge=32)
        encoded = service.encode(tensor, qp=24.0)
        assert encoded.ok
        decoded = service.decode(encoded.value.to_bytes())
        assert decoded.ok and not decoded.degraded
        np.testing.assert_allclose(decoded.value, tensor, atol=12.0)


# -- telemetry ----------------------------------------------------------


class TestDecodeTelemetry:
    def test_vectorized_publishes_stage_ledger(self):
        frames = _frames()
        data = FrameEncoder(EncoderConfig(qp=24.0)).encode(frames).data
        with telemetry.session() as registry:
            decode_frames(data, decode="vectorized")
        for stage in DECODE_STAGES:
            assert registry.counters[f"decode.seconds.{stage}"] >= 0.0
        assert registry.counters["decode.coeff_bins"] > 0
        assert registry.counters["decode.frames"] == len(frames)
        assert registry.counters["decode.batched_blocks"] > 0
        # Spans nest under the frame span, so match on the leaf name.
        leaves = {path.rsplit("/", 1)[-1] for path in registry.spans}
        assert {"decode.entropy", "decode.reconstruct", "decode.predict"} <= leaves

    def test_legacy_publishes_no_stage_ledger(self):
        frames = _frames()
        data = FrameEncoder(EncoderConfig(qp=24.0)).encode(frames).data
        with telemetry.session() as registry:
            decode_frames(data, decode="legacy")
        assert registry.counters["decode.frames"] == len(frames)
        assert "decode.seconds.entropy" not in registry.counters

    def test_decode_stats_ledger(self):
        stats = DecodeStats()
        stats.add_count("coeff_bins", 10)
        stats.add_seconds("entropy", 0.5)
        other = DecodeStats()
        other.add_count("coeff_bins", 5)
        other.add_seconds("entropy", 0.25)
        other.add_seconds("predict", 0.1)
        stats.merge(other)
        snapshot = stats.as_dict()
        assert snapshot["counts"]["coeff_bins"] == 15
        assert snapshot["seconds"]["entropy"] == 0.75
        registry = telemetry.Registry()
        stats.publish(registry)
        assert registry.counters["decode.coeff_bins"] == 15
        assert registry.counters["decode.seconds.predict"] == 0.1
        stats.publish(None)  # no registry: a no-op, not an error
