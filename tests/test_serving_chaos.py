"""Chaos-harness tests: the new FaultInjector modes (hang / raise),
payload-region damage, the soak invariant, and the serve benchmark."""

import numpy as np
import pytest

import repro.telemetry as telemetry
from repro.resilience.faults import FaultConfig, FaultInjector
from repro.serving.chaos import (
    ChaosConfig,
    _damage_payload,
    _make_fault_gate,
    format_report,
    run_chaos,
    run_serve_bench,
)
from repro.serving.supervisor import WorkerCrashed


class TestFaultModes:
    def test_hang_mode_is_seeded_and_bounded(self):
        def draws(seed):
            injector = FaultInjector(
                seed=seed, config=FaultConfig(hang_prob=1.0, hang_s=0.2)
            )
            return [injector.worker_hang_s() for _ in range(50)]

        assert draws(5) == draws(5)
        assert draws(5) != draws(6)
        assert all(0.1 <= s <= 0.3 for s in draws(5))  # hang_s * [0.5, 1.5)

    def test_raise_mode_is_seeded(self):
        def draws(seed):
            injector = FaultInjector(
                seed=seed, config=FaultConfig(raise_prob=0.5)
            )
            return [injector.worker_raises() for _ in range(100)]

        assert draws(9) == draws(9)
        assert any(draws(9)) and not all(draws(9))

    def test_modes_off_by_default(self):
        injector = FaultInjector(seed=0)
        assert injector.worker_hang_s() == 0.0
        assert not injector.worker_raises()
        assert injector.injected == 0

    def test_mode_counters(self):
        with telemetry.session() as registry:
            injector = FaultInjector(
                seed=1, config=FaultConfig(hang_prob=1.0, raise_prob=1.0)
            )
            assert injector.worker_hang_s() > 0.0
            assert injector.worker_raises()
            counters = dict(registry.counters)
        assert counters["faults.hangs"] == 1
        assert counters["faults.raised_excs"] == 1
        assert counters["faults.injected"] == 2
        assert injector.injected == 2

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(config=FaultConfig(hang_prob=1.5))
        with pytest.raises(ValueError):
            FaultInjector(config=FaultConfig(raise_prob=-0.1))


class TestFaultGate:
    def test_crash_raises_worker_crashed(self):
        injector = FaultInjector(seed=0, config=FaultConfig(crash_prob=1.0))
        gate = _make_fault_gate(injector)
        with pytest.raises(WorkerCrashed):
            gate("encode")

    def test_raise_mode_raises_runtime_error(self):
        injector = FaultInjector(seed=0, config=FaultConfig(raise_prob=1.0))
        gate = _make_fault_gate(injector)
        with pytest.raises(RuntimeError, match="injected worker exception"):
            gate("decode")

    def test_hang_sleeps_for_the_drawn_duration(self):
        sleeps = []
        injector = FaultInjector(
            seed=3, config=FaultConfig(hang_prob=1.0, hang_s=0.2)
        )
        gate = _make_fault_gate(injector, sleep=sleeps.append)
        gate("encode")
        assert len(sleeps) == 1
        assert 0.1 <= sleeps[0] <= 0.3

    def test_healthy_gate_is_a_no_op(self):
        gate = _make_fault_gate(FaultInjector(seed=0))
        gate("encode")  # no exception, no sleep


class TestDamagePayload:
    def _injector(self, **cfg):
        return FaultInjector(seed=4, config=FaultConfig(**cfg))

    def test_damage_never_touches_the_protected_prefix(self):
        blob = bytes(range(256)) * 4
        injector = self._injector(bit_flip_prob=1.0)
        for _ in range(20):
            damaged, changed = _damage_payload(blob, 100, injector)
            assert changed
            assert damaged[:100] == blob[:100]
            assert damaged[100:] != blob[100:]

    def test_truncation_keeps_the_prefix_whole(self):
        blob = bytes(1000)
        injector = self._injector(truncate_prob=1.0)
        damaged, changed = _damage_payload(blob, 64, injector)
        assert changed
        assert len(damaged) < len(blob)
        assert damaged[:64] == blob[:64]

    def test_no_faults_no_change(self):
        blob = bytes(200)
        damaged, changed = _damage_payload(blob, 50, self._injector())
        assert damaged == blob and not changed


class TestChaosSoak:
    def test_small_soak_meets_the_contract(self):
        report = run_chaos(ChaosConfig(requests=80, seed=2))
        invariant = report["invariant"]
        assert invariant["passed"]
        assert invariant["silent_corruptions"] == 0
        assert invariant["untyped_errors"] == 0
        assert invariant["availability"] >= report["config"]["availability_slo"]
        assert report["slo"]["requests"] == 80
        checked = report["checked"]
        assert checked["encode"] + checked["decode"] == 80

    def test_faults_are_actually_injected_and_survived(self):
        report = run_chaos(ChaosConfig(requests=120, seed=0))
        assert report["faults_injected"]["worker"] > 0
        assert report["faults_injected"]["bytes"] > 0
        assert report["checked"]["damaged"] > 0
        # Damaged decodes surface as explicit degradation, never silence.
        assert report["slo"]["outcomes"]["degraded"] > 0
        assert report["invariant"]["passed"]

    def test_soak_is_deterministic_without_timing_faults(self):
        def run():
            return run_chaos(
                ChaosConfig(
                    requests=50, seed=4, hang_prob=0.0, straggler_prob=0.0
                )
            )

        first, second = run(), run()
        assert first["slo"]["outcomes"] == second["slo"]["outcomes"]
        assert first["faults_injected"] == second["faults_injected"]
        assert first["checked"] == second["checked"]

    def test_format_report_carries_the_verdict(self):
        report = run_chaos(ChaosConfig(requests=20, seed=1))
        text = format_report(report)
        assert "PASS" in text or "FAIL" in text
        assert "availability" in text


class TestServeBench:
    def test_document_shape_and_accounting(self):
        doc = run_serve_bench(
            requests=10, seed=0, burst_threads=6, burst_per_thread=3
        )
        assert doc["sequential"]["requests"] > 0
        assert doc["sequential"]["outcomes"]["error"] == 0
        burst = doc["burst"]["slo"]
        assert burst["requests"] == 6 * 3
        outcomes = burst["outcomes"]
        assert sum(outcomes.values()) == burst["requests"]
        # Every shed is typed and every non-shed request succeeded.
        assert outcomes["error"] == 0
        assert doc["shed_typed"] == outcomes["shed"]
