"""Open-loop traffic generation: determinism, arrival shape, sessions."""

import time

import pytest

from repro.cluster.traffic import (
    Arrival,
    OpenLoopDriver,
    TrafficConfig,
    generate_arrivals,
)


class TestGeneration:
    def test_deterministic_under_seed(self):
        first = generate_arrivals(TrafficConfig(requests=300, seed=3))
        second = generate_arrivals(TrafficConfig(requests=300, seed=3))
        assert first == second

    def test_seed_changes_the_workload(self):
        first = generate_arrivals(TrafficConfig(requests=300, seed=3))
        second = generate_arrivals(TrafficConfig(requests=300, seed=4))
        assert first != second

    def test_arrival_times_nondecreasing(self):
        arrivals = generate_arrivals(TrafficConfig(requests=500, seed=0))
        times = [a.at_s for a in arrivals]
        assert times == sorted(times)
        assert all(t >= 0 for t in times)

    def test_mean_rate_near_base_rate(self):
        cfg = TrafficConfig(
            requests=2000, base_rate_rps=200.0, seed=1,
            burst_factor=1.0, diurnal_amplitude=0.0,
        )
        arrivals = generate_arrivals(cfg)
        achieved = len(arrivals) / arrivals[-1].at_s
        # Unmodulated Poisson: the empirical rate concentrates around
        # the configured one (loose 2x band; the draw is seeded).
        assert cfg.base_rate_rps / 2 < achieved < cfg.base_rate_rps * 2

    def test_sides_drawn_from_the_configured_mix(self):
        cfg = TrafficConfig(requests=400, seed=2)
        allowed = {side for side, _ in cfg.sizes}
        for arrival in generate_arrivals(cfg):
            assert arrival.side in allowed
            assert 0 <= arrival.session < cfg.sessions

    def test_side_is_stable_per_tensor_id(self):
        arrivals = generate_arrivals(TrafficConfig(requests=800, seed=5))
        seen = {}
        for arrival in arrivals:
            assert seen.setdefault(arrival.tensor_id, arrival.side) == (
                arrival.side
            )

    def test_full_stickiness_bounds_the_working_set(self):
        cfg = TrafficConfig(
            requests=600, seed=6, sessions=4, session_stickiness=1.0
        )
        arrivals = generate_arrivals(cfg)
        # With stickiness 1.0 each session mints exactly one id and
        # reuses it forever.
        assert len({a.tensor_id for a in arrivals}) <= cfg.sessions

    def test_decode_fraction_extremes(self):
        all_decode = generate_arrivals(
            TrafficConfig(requests=100, seed=0, decode_fraction=1.0)
        )
        assert all(a.kind == "decode" for a in all_decode)
        all_encode = generate_arrivals(
            TrafficConfig(requests=100, seed=0, decode_fraction=0.0)
        )
        assert all(a.kind == "encode" for a in all_encode)


class TestOpenLoopDriver:
    def test_results_in_arrival_order(self):
        arrivals = [
            Arrival(at_s=0.001 * i, index=i, session=0,
                    tensor_id=f"t{i}", side=16, kind="encode")
            for i in range(32)
        ]
        driver = OpenLoopDriver(lambda a: a.index, client_threads=8,
                                speed=100.0)
        assert driver.run(arrivals) == list(range(32))

    def test_issue_times_follow_the_schedule(self):
        arrivals = [
            Arrival(at_s=0.05 * i, index=i, session=0,
                    tensor_id=f"t{i}", side=16, kind="encode")
            for i in range(4)
        ]
        issued = []
        start = time.perf_counter()
        OpenLoopDriver(
            lambda a: issued.append(time.perf_counter() - start),
            client_threads=4,
        ).run(arrivals)
        # Open-loop property: nothing fires before its scheduled time.
        for arrival, at in zip(arrivals, sorted(issued)):
            assert at >= arrival.at_s - 1e-3

    def test_speed_validation(self):
        with pytest.raises(ValueError):
            OpenLoopDriver(lambda a: None, speed=0.0)
