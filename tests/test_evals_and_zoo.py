"""Tests for the eval harness, task suites, model zoo, and Fig-7 proxies."""

import numpy as np
import pytest

from repro.evals import (
    COMMONSENSE_SUITE,
    average_normalized_accuracy,
    build_suite,
    evaluate_model,
    evaluate_suite,
)
from repro.evals.harness import average_accuracy, compression_sweep
from repro.evals.tasks import TaskSpec, build_task
from repro.models.zoo import SPECS, load_model, parameter_bytes
from repro.quant.rtn import rtn_roundtrip


@pytest.fixture(scope="module")
def tiny():
    return load_model("tiny-sim")


@pytest.fixture(scope="module")
def tasks(tiny):
    _, corpus = tiny
    return build_suite(corpus, COMMONSENSE_SUITE[:4], num_items=25)


class TestTasks:
    def test_item_counts(self, tiny):
        _, corpus = tiny
        task = build_task(corpus, TaskSpec("t", num_items=17, seed=3))
        assert len(task) == 17

    def test_answer_hidden_among_choices(self, tiny):
        _, corpus = tiny
        task = build_task(corpus, TaskSpec("t", num_items=10, num_choices=4, seed=4))
        for cands, answer in zip(task.candidates, task.answers):
            assert len(cands) == 4
            assert 0 <= answer < 4

    def test_distractors_differ_from_answer(self, tiny):
        _, corpus = tiny
        task = build_task(corpus, TaskSpec("t", num_items=10, corruption=0.3, seed=5))
        for cands, answer in zip(task.candidates, task.answers):
            real = cands[answer]
            for i, cand in enumerate(cands):
                if i != answer:
                    assert not np.array_equal(cand, real)

    def test_chance_accuracy(self, tiny):
        _, corpus = tiny
        task = build_task(corpus, TaskSpec("t", num_choices=5))
        assert task.chance_accuracy == pytest.approx(0.2)

    def test_generation_deterministic(self, tiny):
        _, corpus = tiny
        a = build_task(corpus, TaskSpec("t", num_items=5, seed=6))
        b = build_task(corpus, TaskSpec("t", num_items=5, seed=6))
        for x, y in zip(a.contexts, b.contexts):
            assert np.array_equal(x, y)


class TestHarness:
    def test_trained_model_beats_chance(self, tiny, tasks):
        model, _ = tiny
        results = evaluate_suite(model, tasks)
        for name, accuracy in results.items():
            assert accuracy > tasks[name].chance_accuracy + 0.1, name

    def test_evaluate_model_includes_perplexity(self, tiny, tasks):
        model, corpus = tiny
        results = evaluate_model(model, corpus, tasks, ppl_sequences=8)
        assert "perplexity" in results
        assert results["perplexity"] < corpus.config.vocab_size

    def test_average_accuracy(self):
        assert average_accuracy({"a": 0.5, "b": 1.0}) == pytest.approx(0.75)
        assert average_accuracy({}) == 0.0

    def test_normalized_accuracy(self):
        base = {"a": 0.8, "b": 0.9}
        degraded = {"a": 0.4, "b": 0.9}
        value = average_normalized_accuracy(degraded, base)
        assert value == pytest.approx((0.5 + 1.0) / 2)

    def test_heavy_compression_hurts_accuracy(self, tiny, tasks):
        model, corpus = tiny
        base = evaluate_suite(model, tasks)

        def factory():
            fresh, _ = load_model("tiny-sim")
            return fresh

        sweep = compression_sweep(
            factory,
            {
                "fp16": None,
                "rtn2": lambda n, w: rtn_roundtrip(w, 2, symmetric=True),
            },
            tasks,
        )
        assert average_accuracy(sweep["rtn2"]) < average_accuracy(sweep["fp16"])


class TestZoo:
    def test_all_specs_well_formed(self):
        for name, spec in SPECS.items():
            assert spec.config.dim % spec.config.num_heads == 0, name
            assert spec.corpus.vocab_size == spec.config.vocab_size, name

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            load_model("gpt5")

    def test_cache_roundtrip(self, tiny):
        model, _ = tiny
        again, _ = load_model("tiny-sim")  # second call hits the cache
        for (n1, p1), (n2, p2) in zip(
            model.named_parameters(), again.named_parameters()
        ):
            assert np.array_equal(p1.data, p2.data), n1

    def test_parameter_bytes(self):
        assert parameter_bytes("tiny-sim") > 0
        assert parameter_bytes("tiny-sim", 8) == parameter_bytes("tiny-sim", 16) // 2


class TestExtraTasks:
    def test_sentiment_above_chance(self):
        from repro.evals.extra_tasks import sentiment_task

        bundle = sentiment_task(num_eval=60, train_steps=80)
        assert bundle.evaluate() > bundle.chance + 0.2

    def test_vqa_above_chance(self):
        from repro.evals.extra_tasks import vqa_task

        bundle = vqa_task(num_eval=60, train_steps=120)
        assert bundle.evaluate() > bundle.chance + 0.2

    def test_image_classification_above_chance(self):
        from repro.evals.extra_tasks import image_classification_task

        bundle = image_classification_task(num_eval=60, train_steps=100)
        assert bundle.evaluate() > bundle.chance + 0.2

    def test_retrieval_above_chance(self):
        from repro.evals.extra_tasks import retrieval_task

        bundle = retrieval_task(num_pairs=30, train_steps=100)
        assert bundle.evaluate() > 5 * bundle.chance

    def test_compression_degrades_task(self):
        from repro.evals.extra_tasks import vqa_task

        bundle = vqa_task(num_eval=60, train_steps=120)
        base = bundle.evaluate()
        bundle.model.apply_weight_transform(
            lambda n, w: rtn_roundtrip(w, 1, symmetric=True)
        )
        assert bundle.evaluate() <= base
