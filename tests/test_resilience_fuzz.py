"""Seeded fuzzing of every byte format plus the framing layer itself.

The resilience contract: feeding mutated, truncated, or garbage bytes
to any decoder either succeeds, conceals (with a report), or raises
:class:`CorruptStreamError` -- it never hangs, never crashes the
interpreter, and never leaks a low-level exception type.  All
randomness is seeded, so a failing trial reproduces exactly.
"""

import numpy as np
import pytest

from repro.codec.decoder import decode_frames, decode_frames_with_report
from repro.codec.encoder import EncoderConfig, encode_frames
from repro.models.synthetic_weights import weight_like
from repro.resilience import (
    ChecksumError,
    CorruptStreamError,
    FaultInjector,
    TruncatedStreamError,
    deframe_payload,
    deframe_slices,
    frame_payload,
    frame_slices,
)
from repro.tensor.checkpoint import (
    load_checkpoint,
    load_checkpoint_with_report,
    save_checkpoint,
)
from repro.tensor.codec import CompressedTensor, TensorCodec
from repro.tensor.precision import quantize_to_uint8


@pytest.fixture(scope="module")
def frames():
    return [
        quantize_to_uint8(weight_like(32, 32, seed=seed))[0] for seed in range(4)
    ]


@pytest.fixture(scope="module")
def stream(frames):
    return encode_frames(frames, EncoderConfig(qp=20)).data


@pytest.fixture(scope="module")
def container_bytes():
    codec = TensorCodec(tile=32)
    return codec.encode(weight_like(64, 64, seed=7), qp=22).to_bytes()


class TestFraming:
    def test_slices_roundtrip(self):
        payloads = [b"alpha", b"", b"x" * 1000]
        slices, damage = deframe_slices(frame_slices(payloads))
        assert slices == payloads
        assert damage == []

    def test_payload_roundtrip_chunked(self):
        data = bytes(range(256)) * 37
        assert deframe_payload(frame_payload(data, chunk_size=100)) == data

    def test_empty_payload_roundtrip(self):
        assert deframe_payload(frame_payload(b"")) == b""

    def test_flip_detected_strict(self):
        raw = bytearray(frame_slices([b"hello world"]))
        raw[-3] ^= 0x01
        with pytest.raises(ChecksumError):
            deframe_slices(bytes(raw))

    def test_flip_localised_non_strict(self):
        raw = bytearray(frame_slices([b"first", b"second", b"third"]))
        raw[-2] ^= 0x01  # inside "third"
        slices, damage = deframe_slices(bytes(raw), expected=3, strict=False)
        assert slices[0] == b"first" and slices[1] == b"second"
        assert slices[2] is None
        assert damage == [(2, "checksum mismatch")]

    def test_truncation_pads_missing_slices(self):
        raw = frame_slices([b"first", b"second"])
        slices, damage = deframe_slices(raw[:7], expected=2, strict=False)
        assert slices == [None, None]
        assert len(damage) == 2

    def test_truncation_strict_raises(self):
        raw = frame_slices([b"first"])
        with pytest.raises(TruncatedStreamError):
            deframe_slices(raw[:-1])


class TestStreamFuzz:
    def test_bit_flip_fuzz_strict(self, stream):
        injector = FaultInjector(seed=11)
        for _ in range(60):
            bad = injector.flip_bits(stream, flips=int(injector.rng.integers(1, 9)))
            try:
                decoded = decode_frames(bad)
                assert all(f.shape == (32, 32) for f in decoded)
            except CorruptStreamError:
                pass

    def test_bit_flip_fuzz_conceal(self, stream, frames):
        injector = FaultInjector(seed=12)
        concealed_total = 0
        for _ in range(60):
            bad = injector.flip_bits(stream, flips=int(injector.rng.integers(1, 9)))
            try:
                decoded, report = decode_frames_with_report(bad)
            except CorruptStreamError:
                continue  # header damage cannot be concealed
            assert len(decoded) == len(frames)
            assert all(f.shape == (32, 32) for f in decoded)
            concealed_total += report.concealed_count
        assert concealed_total > 0  # the fuzzer did land payload hits

    def test_truncation_fuzz(self, stream, frames):
        injector = FaultInjector(seed=13)
        for _ in range(40):
            bad = injector.truncate(stream)
            try:
                decode_frames(bad)
            except CorruptStreamError:
                pass
            try:
                decoded, report = decode_frames_with_report(bad)
                assert len(decoded) == len(frames)
            except CorruptStreamError:
                pass

    def test_damaged_slice_does_not_affect_others(self, stream, frames):
        """Slice independence: frames other than the hit one decode
        bit-exactly -- the whole point of per-frame coder resets."""
        clean = decode_frames(stream)
        injector = FaultInjector(seed=14)
        hits = 0
        for _ in range(30):
            bad = injector.flip_bits(stream)
            try:
                decoded, report = decode_frames_with_report(bad)
            except CorruptStreamError:
                continue
            damaged = {index for index, _ in report.concealed}
            if not damaged:
                continue
            hits += 1
            for index, frame in enumerate(decoded):
                if index not in damaged:
                    assert np.array_equal(frame, clean[index]), index
        assert hits > 0

    def test_conceal_is_deterministic(self, stream):
        injector = FaultInjector(seed=15)
        bad = injector.flip_bits(stream, flips=4)
        try:
            first, report1 = decode_frames_with_report(bad)
            second, report2 = decode_frames_with_report(bad)
        except CorruptStreamError:
            pytest.skip("flips landed in the header")
        assert report1.concealed == report2.concealed
        for a, b in zip(first, second):
            assert np.array_equal(a, b)


class TestContainerFuzz:
    def test_bit_flip_fuzz(self, container_bytes):
        codec = TensorCodec(tile=32)
        injector = FaultInjector(seed=21)
        concealed_total = 0
        for _ in range(60):
            bad = injector.flip_bits(
                container_bytes, flips=int(injector.rng.integers(1, 5))
            )
            try:
                compressed = CompressedTensor.from_bytes(bad)
            except CorruptStreamError:
                continue  # metadata damage fails loudly, by design
            try:
                tensor = codec.decode(compressed)
                assert tensor.shape == (64, 64)
            except CorruptStreamError:
                pass
            try:
                tensor, report = codec.decode_with_report(
                    CompressedTensor.from_bytes(bad, strict=False)
                )
                assert tensor.shape == (64, 64)
                concealed_total += report.concealed_count
            except CorruptStreamError:
                pass
        assert concealed_total > 0

    def test_truncation_fuzz(self, container_bytes):
        codec = TensorCodec(tile=32)
        injector = FaultInjector(seed=22)
        for _ in range(40):
            bad = injector.truncate(container_bytes)
            try:
                codec.decode(CompressedTensor.from_bytes(bad))
            except CorruptStreamError:
                pass

    def test_concealed_tile_reported_and_rest_exact(self, container_bytes):
        codec = TensorCodec(tile=32)
        clean = codec.decode(CompressedTensor.from_bytes(container_bytes))
        bad = bytearray(container_bytes)
        bad[-10] ^= 0xFF  # inside the last frame slice
        compressed = CompressedTensor.from_bytes(bytes(bad))
        with pytest.raises(CorruptStreamError):
            codec.decode(compressed)
        tensor, report = codec.decode_with_report(compressed)
        assert report.concealed_count == 1
        (tile_index, _reason) = report.concealed[0]
        # Undamaged tiles decode bit-exactly.
        for index in range(compressed.layout.num_tiles):
            y0, x0, h, w = compressed.layout.tile_box(index)
            if index != tile_index:
                assert np.array_equal(
                    tensor[y0 : y0 + h, x0 : x0 + w],
                    clean[y0 : y0 + h, x0 : x0 + w],
                )

    def test_garbage_rejected(self):
        injector = FaultInjector(seed=23)
        for size in (0, 1, 2, 7, 64, 500):
            garbage = bytes(injector.rng.integers(0, 256, size, dtype=np.uint8))
            with pytest.raises(CorruptStreamError):
                CompressedTensor.from_bytes(garbage)


class TestCheckpointFuzz:
    @pytest.fixture(scope="class")
    def checkpoint(self, tmp_path_factory):
        rng = np.random.default_rng(0)
        state = {
            "layer.weight": rng.standard_normal((32, 32)),
            "layer.bias": rng.standard_normal(8),
            "norm.scale": rng.standard_normal(4),
        }
        path = tmp_path_factory.mktemp("ckpt") / "model.lvck"
        save_checkpoint(state, str(path), bits_per_value=4.0)
        return str(path), state

    def test_bit_flip_fuzz(self, checkpoint, tmp_path):
        path, _ = checkpoint
        blob = open(path, "rb").read()
        injector = FaultInjector(seed=31)
        target = tmp_path / "fuzzed.lvck"
        for _ in range(40):
            target.write_bytes(injector.flip_bits(blob, flips=2))
            try:
                load_checkpoint(str(target))
            except CorruptStreamError:
                pass
            # Tolerant load never raises on payload damage.
            try:
                state, report = load_checkpoint_with_report(str(target))
                assert report.total_entries <= 3
            except CorruptStreamError:
                pass  # header/structure damage

    def test_partial_load_skips_damaged_entry(self, checkpoint, tmp_path):
        path, state = checkpoint
        blob = bytearray(open(path, "rb").read())
        blob[-3] ^= 0xFF  # inside the final entry's payload
        target = tmp_path / "damaged.lvck"
        target.write_bytes(bytes(blob))
        with pytest.raises(CorruptStreamError):
            load_checkpoint(str(target))
        loaded, report = load_checkpoint_with_report(str(target))
        assert not report.clean
        assert report.total_entries == len(state)
        assert len(loaded) == len(state) - 1
        skipped = {name for name, _ in report.skipped}
        assert len(skipped) == 1
        assert set(loaded) | skipped == set(state)

    def test_truncation_fuzz(self, checkpoint, tmp_path):
        path, _ = checkpoint
        blob = open(path, "rb").read()
        injector = FaultInjector(seed=32)
        target = tmp_path / "cut.lvck"
        for _ in range(20):
            target.write_bytes(injector.truncate(blob))
            try:
                load_checkpoint(str(target))
            except CorruptStreamError:
                pass


class TestFaultInjectorDeterminism:
    def test_same_seed_same_carnage(self):
        payload = bytes(range(256)) * 8
        a = FaultInjector(seed=5, drop_prob=0.2, bit_flip_prob=0.5, truncate_prob=0.2)
        b = FaultInjector(seed=5, drop_prob=0.2, bit_flip_prob=0.5, truncate_prob=0.2)
        for _ in range(50):
            assert a.corrupt(payload) == b.corrupt(payload)
        assert a.injected == b.injected

    def test_different_seed_diverges(self):
        payload = bytes(range(256)) * 8
        a = FaultInjector(seed=1, bit_flip_prob=1.0)
        b = FaultInjector(seed=2, bit_flip_prob=1.0)
        assert any(a.corrupt(payload) != b.corrupt(payload) for _ in range(10))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(drop_prob=1.5)
