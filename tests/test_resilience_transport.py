"""Self-healing transport: retry/retransmit, skip-and-compensate, slow path.

The headline property (the ISSUE's acceptance bar): a ring all-reduce
over links with injected drops and bit flips produces a result
*identical* to the fault-free run -- the CRC framing catches every
damaged delivery and the retry loop repairs it -- while the extra
traffic shows up in the ledger and telemetry.
"""

import numpy as np
import pytest

import repro.telemetry as telemetry
from repro.distributed.allreduce import ring_allreduce
from repro.distributed.comm import Channel, IdentityCompressor
from repro.distributed.dataparallel import DataParallelTrainer
from repro.distributed.pipeline import PipelineParallelTrainer
from repro.models.zoo import load_model
from repro.resilience import FaultInjector, RetryPolicy, TransportError


@pytest.fixture()
def tensors():
    rng = np.random.default_rng(42)
    return [rng.standard_normal((24, 24)) for _ in range(4)]


class TestChannelSelfHealing:
    def test_reliable_channel_unchanged(self):
        channel = Channel()
        tensor = np.arange(12.0).reshape(3, 4)
        out = channel.send(tensor, step=0, tag="x")
        assert np.array_equal(out, tensor)
        record = channel.records[0]
        assert record.retries == 0
        assert record.retransmitted_bytes == 0.0
        assert record.delivered

    def test_faulty_channel_delivers_bit_exact(self):
        injector = FaultInjector(seed=9, bit_flip_prob=0.3, truncate_prob=0.2)
        channel = Channel(fault_injector=injector)
        rng = np.random.default_rng(0)
        tensor = rng.standard_normal((16, 16))
        for step in range(30):
            out = channel.send(tensor, step=step)
            assert np.array_equal(out, tensor)  # healed, not approximated
        assert channel.total_retries > 0
        assert channel.total_retransmitted_bytes > 0

    def test_retries_exhausted_raises_transport_error(self):
        injector = FaultInjector(seed=1, drop_prob=1.0)
        channel = Channel(
            fault_injector=injector, retry=RetryPolicy(max_retries=2)
        )
        with pytest.raises(TransportError):
            channel.send(np.ones((4, 4)), step=0, tag="doomed")
        # The failed attempt is still in the ledger: its bytes crossed
        # the wire even though they never arrived.
        assert len(channel.records) == 1
        record = channel.records[0]
        assert not record.delivered
        assert record.retries == 2

    def test_retransmitted_bytes_charged_to_ledger(self):
        injector = FaultInjector(seed=2, drop_prob=0.5)
        channel = Channel(fault_injector=injector)
        tensor = np.ones((8, 8))
        for step in range(20):
            channel.send(tensor, step=step)
        base = sum(r.num_values * r.bits_per_value / 8.0 for r in channel.records)
        assert channel.total_compressed_bytes == pytest.approx(
            base + channel.total_retransmitted_bytes
        )
        assert channel.total_retransmitted_bytes > 0

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(max_retries=4, backoff_base_s=0.01, backoff_factor=2.0)
        delays = [policy.backoff_s(attempt) for attempt in (1, 2, 3)]
        assert delays == [0.01, 0.02, 0.04]

    def test_telemetry_counters(self):
        with telemetry.session() as registry:
            injector = FaultInjector(seed=3, drop_prob=0.4)
            channel = Channel(fault_injector=injector)
            for step in range(20):
                channel.send(np.ones((8, 8)), step=step)
            counters = dict(registry.counters)
        assert counters["comm.retransmits"] > 0
        assert counters["comm.retransmitted_bytes"] > 0
        assert counters["comm.drops"] > 0
        assert counters["faults.injected"] > 0


class TestAllReduceUnderFaults:
    def test_identical_to_fault_free(self, tensors):
        clean = ring_allreduce(tensors)
        injector = FaultInjector(seed=5, drop_prob=0.15, bit_flip_prob=0.15)
        healed = ring_allreduce(tensors, fault_injector=injector)
        for a, b in zip(clean.reduced, healed.reduced):
            assert np.array_equal(a, b)
        assert healed.retransmissions > 0
        assert healed.retransmitted_bytes > 0
        assert clean.retransmissions == 0

    def test_retransmissions_visible_in_telemetry(self, tensors):
        with telemetry.session() as registry:
            injector = FaultInjector(seed=6, drop_prob=0.2)
            result = ring_allreduce(tensors, fault_injector=injector)
            counters = dict(registry.counters)
        assert result.retransmissions > 0
        assert counters["allreduce.retransmissions"] == result.retransmissions

    def test_compressed_collective_heals_too(self, tensors):
        injector_a = FaultInjector(seed=7, bit_flip_prob=0.2)
        clean = ring_allreduce(tensors, compressor=IdentityCompressor())
        healed = ring_allreduce(
            tensors, compressor=IdentityCompressor(), fault_injector=injector_a
        )
        for a, b in zip(clean.reduced, healed.reduced):
            assert np.array_equal(a, b)

    def test_unrecoverable_link_raises(self, tensors):
        injector = FaultInjector(seed=8, drop_prob=1.0)
        with pytest.raises(TransportError):
            ring_allreduce(
                tensors,
                fault_injector=injector,
                retry=RetryPolicy(max_retries=1),
            )


class TestDataParallelUnderFaults:
    def test_training_converges_under_faults(self):
        model, corpus = load_model("tiny-sim")
        injector = FaultInjector(seed=11, drop_prob=0.6, crash_prob=0.02)
        channel = Channel(
            fault_injector=injector, retry=RetryPolicy(max_retries=1)
        )
        trainer = DataParallelTrainer(
            model, num_workers=4, gradient_channel=channel
        )
        history = trainer.train(corpus.batches(8, 40, seed=4), steps=40)
        losses = [s.loss for s in history if np.isfinite(s.loss)]
        assert len(losses) >= 30
        # Still learning through the chaos (trend, not step-to-step).
        assert np.mean(losses[-5:]) < np.mean(losses[:5])
        # The fault rate is high enough that some buckets were lost and
        # compensated rather than healed by retransmission alone.
        assert sum(s.buckets_lost for s in history) > 0
        assert channel.total_retries > 0

    def test_skip_and_compensate_preserves_gradient_signal(self):
        """A lost bucket reappears in the worker's next contribution."""
        model, corpus = load_model("tiny-sim")
        injector = FaultInjector(seed=12, drop_prob=1.0)  # every send fails
        channel = Channel(
            fault_injector=injector, retry=RetryPolicy(max_retries=0)
        )
        trainer = DataParallelTrainer(
            model, num_workers=2, gradient_channel=channel
        )
        tokens, targets = next(corpus.batches(4, 1, seed=1))
        trainer.train_step(tokens, targets)
        assert trainer.history[0].buckets_lost == 2
        residuals = dict(trainer._transport_residual)
        assert set(residuals) == {0, 1}
        assert all(np.any(r != 0) for r in residuals.values())
        # Heal the link; the carried residual is flushed into the next
        # step's buckets and the buffers empty out.
        injector.config.drop_prob = 0.0
        trainer.train_step(tokens, targets)
        assert trainer.history[1].buckets_lost == 0
        assert not trainer._transport_residual

    def test_worker_crash_averages_over_survivors(self):
        model, corpus = load_model("tiny-sim")
        injector = FaultInjector(seed=13, crash_prob=0.5)
        trainer = DataParallelTrainer(
            model, num_workers=4, fault_injector=injector
        )
        tokens, targets = next(corpus.batches(8, 1, seed=3))
        for _ in range(6):
            trainer.train_step(tokens, targets)
        participating = [s.workers_participating for s in trainer.history]
        assert any(p < 4 for p in participating)  # crashes did land
        assert all(np.isfinite(s.loss) or p == 0
                   for s, p in zip(trainer.history, participating))

    def test_fault_free_trainer_unchanged(self):
        model, corpus = load_model("tiny-sim")
        trainer = DataParallelTrainer(model, num_workers=2)
        tokens, targets = next(corpus.batches(4, 1, seed=5))
        loss = trainer.train_step(tokens, targets)
        assert np.isfinite(loss)
        stats = trainer.history[0]
        assert stats.workers_participating == 2
        assert stats.buckets_lost == 0


class TestPipelineUnderFaults:
    def test_slow_path_keeps_training_alive(self):
        model, corpus = load_model("tiny-sim")
        injector = FaultInjector(seed=21, drop_prob=0.7)
        trainer = PipelineParallelTrainer(
            model,
            num_stages=2,
            activation_channel=Channel(
                fault_injector=injector, retry=RetryPolicy(max_retries=1)
            ),
            gradient_channel=Channel(
                fault_injector=injector, retry=RetryPolicy(max_retries=1)
            ),
        )
        history = trainer.train(corpus.batches(8, 10, seed=9), steps=10)
        assert len(history) == 10
        assert all(np.isfinite(s.loss) for s in history)
        assert trainer.slowpath_sends > 0
        # Slow-path sends are charged to the ledger at the 16-bit rate.
        slow = [
            r
            for r in trainer.activation_channel.records
            + trainer.gradient_channel.records
            if r.tag.endswith("-slowpath")
        ]
        assert len(slow) == trainer.slowpath_sends
        assert all(r.bits_per_value == 16.0 for r in slow)
