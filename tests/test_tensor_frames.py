"""Tests for tensor <-> frame tiling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tensor.frames import TileLayout, as_2d, join_tiles, split_tiles


class TestAs2D:
    def test_scalar(self):
        assert as_2d(np.array(3.0)).shape == (1, 1)

    def test_vector(self):
        assert as_2d(np.arange(10)).shape == (1, 10)

    def test_matrix_unchanged(self):
        m = np.zeros((3, 5))
        assert as_2d(m).shape == (3, 5)

    def test_3d_flattens_leading(self):
        t = np.zeros((2, 3, 5))
        assert as_2d(t).shape == (6, 5)


class TestTiling:
    def test_exact_grid(self):
        t = np.arange(64 * 64).reshape(64, 64).astype(np.float32)
        tiles, layout = split_tiles(t, 32)
        assert len(tiles) == 4
        assert all(tile.shape == (32, 32) for tile in tiles)
        assert np.array_equal(join_tiles(tiles, layout), t)

    def test_ragged_edges(self):
        t = np.random.default_rng(0).normal(size=(70, 45)).astype(np.float32)
        tiles, layout = split_tiles(t, 32)
        assert layout.grid == (3, 2)
        assert tiles[-1].shape == (6, 13)
        assert np.array_equal(join_tiles(tiles, layout), t)

    def test_small_tensor_single_tile(self):
        t = np.ones((5, 7))
        tiles, layout = split_tiles(t, 256)
        assert len(tiles) == 1 and tiles[0].shape == (5, 7)
        assert np.array_equal(join_tiles(tiles, layout), t)

    def test_3d_roundtrip(self):
        t = np.random.default_rng(1).normal(size=(4, 20, 30))
        tiles, layout = split_tiles(t, 32)
        assert np.allclose(join_tiles(tiles, layout), t)

    def test_tile_too_small_rejected(self):
        with pytest.raises(ValueError):
            split_tiles(np.zeros((8, 8)), 4)

    def test_wrong_tile_count_rejected(self):
        t = np.zeros((64, 64))
        tiles, layout = split_tiles(t, 32)
        with pytest.raises(ValueError):
            join_tiles(tiles[:-1], layout)

    def test_wrong_tile_shape_rejected(self):
        t = np.zeros((64, 64))
        tiles, layout = split_tiles(t, 32)
        tiles[0] = tiles[0][:16, :16]
        with pytest.raises(ValueError):
            join_tiles(tiles, layout)

    def test_tile_box_out_of_range(self):
        _, layout = split_tiles(np.zeros((64, 64)), 32)
        with pytest.raises(IndexError):
            layout.tile_box(99)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=100),
        st.integers(min_value=1, max_value=100),
        st.sampled_from([8, 16, 32, 64]),
    )
    def test_property_roundtrip(self, rows, cols, tile):
        rng = np.random.default_rng(rows * 1000 + cols)
        t = rng.normal(size=(rows, cols))
        tiles, layout = split_tiles(t, tile)
        assert np.array_equal(join_tiles(tiles, layout), t)
