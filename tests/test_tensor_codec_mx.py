"""Tests for TensorCodec with the MX alignment front-end."""

import numpy as np
import pytest

from repro.models.synthetic_weights import weight_like
from repro.tensor.codec import CompressedTensor, TensorCodec


class TestMXCodec:
    def test_roundtrip(self):
        codec = TensorCodec(tile=64, alignment="mx")
        tensor = weight_like(48, 48, seed=0)
        restored, compressed = codec.roundtrip(tensor, qp=16)
        assert restored.shape == tensor.shape
        assert np.mean((restored - tensor) ** 2) < np.var(tensor) / 10

    def test_invalid_alignment_rejected(self):
        with pytest.raises(ValueError):
            TensorCodec(alignment="fp8")

    def test_mx_wins_on_extreme_outliers(self):
        """The Section 7 alignment-unit argument: per-block exponents
        keep sample resolution when one value is 1000x the rest."""
        rng = np.random.default_rng(1)
        tensor = rng.normal(0, 0.01, (64, 64)).astype(np.float64)
        tensor[0, 0] = 20.0

        minmax = TensorCodec(tile=64, alignment="minmax")
        mx = TensorCodec(tile=64, alignment="mx")
        rest_minmax, _ = minmax.roundtrip(tensor, qp=4)
        rest_mx, _ = mx.roundtrip(tensor, qp=4)

        clean = np.ones_like(tensor, dtype=bool)
        clean[0, :1] = False
        err_minmax = np.mean((rest_minmax[clean] - tensor[clean]) ** 2)
        err_mx = np.mean((rest_mx[clean] - tensor[clean]) ** 2)
        assert err_mx < err_minmax / 4

    def test_side_info_counted_in_size(self):
        tensor = weight_like(64, 64, seed=2)
        minmax = TensorCodec(tile=64, alignment="minmax").encode(tensor, qp=20)
        mx = TensorCodec(tile=64, alignment="mx").encode(tensor, qp=20)
        # The exponent plane costs real bits and must be accounted.
        assert mx.nbytes > len(mx.data)
        assert mx.nbytes - len(mx.data) > minmax.nbytes - len(minmax.data)

    def test_serialization_roundtrip(self):
        codec = TensorCodec(tile=64, alignment="mx")
        tensor = weight_like(32, 40, seed=3)
        compressed = codec.encode(tensor, qp=16)
        revived = CompressedTensor.from_bytes(compressed.to_bytes())
        assert np.array_equal(codec.decode(compressed), codec.decode(revived))

    def test_bitrate_target_with_mx(self):
        codec = TensorCodec(tile=64, alignment="mx")
        tensor = weight_like(64, 64, seed=4)
        compressed = codec.encode(tensor, bits_per_value=3.5)
        assert compressed.bits_per_value <= 3.55
