"""Tests for DCT transform coding and scan order."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.codec.transform import (
    SUPPORTED_SIZES,
    dct_matrix,
    forward_dct2,
    forward_dct2_batch,
    inverse_dct2,
    inverse_dct2_batch,
    zigzag_order,
    zigzag_scan,
    zigzag_unscan,
)


class TestDCT:
    @pytest.mark.parametrize("n", SUPPORTED_SIZES)
    def test_basis_is_orthonormal(self, n):
        basis = dct_matrix(n)
        assert np.allclose(basis @ basis.T, np.eye(n), atol=1e-10)

    def test_unsupported_size_rejected(self):
        with pytest.raises(ValueError):
            dct_matrix(5)

    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_roundtrip(self, n):
        rng = np.random.default_rng(n)
        block = rng.normal(0, 50, (n, n))
        assert np.allclose(inverse_dct2(forward_dct2(block)), block, atol=1e-8)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            forward_dct2(np.zeros((4, 8)))
        with pytest.raises(ValueError):
            inverse_dct2(np.zeros((4, 8)))

    def test_constant_block_is_pure_dc(self):
        block = np.full((8, 8), 17.0)
        coeffs = forward_dct2(block)
        assert coeffs[0, 0] == pytest.approx(17.0 * 8)
        rest = coeffs.copy()
        rest[0, 0] = 0.0
        assert np.allclose(rest, 0.0, atol=1e-10)

    def test_energy_preservation_parseval(self):
        rng = np.random.default_rng(3)
        block = rng.normal(0, 10, (16, 16))
        coeffs = forward_dct2(block)
        assert np.sum(block**2) == pytest.approx(np.sum(coeffs**2), rel=1e-10)

    def test_batch_matches_single(self):
        rng = np.random.default_rng(5)
        blocks = rng.normal(0, 10, (6, 8, 8))
        batched = forward_dct2_batch(blocks)
        for i in range(6):
            assert np.allclose(batched[i], forward_dct2(blocks[i]), atol=1e-10)
        assert np.allclose(inverse_dct2_batch(batched), blocks, atol=1e-8)

    def test_outlier_energy_is_spread(self):
        """The Figure 3 effect: one huge outlier becomes bounded coefficients."""
        block = np.zeros((8, 8))
        block[3, 4] = 128.0
        coeffs = forward_dct2(block)
        assert np.max(np.abs(coeffs)) < 128.0 / 3
        assert np.sum(coeffs**2) == pytest.approx(128.0**2, rel=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(
        arrays(
            np.float64,
            (8, 8),
            elements=st.floats(min_value=-300, max_value=300, allow_nan=False),
        )
    )
    def test_property_roundtrip(self, block):
        assert np.allclose(inverse_dct2(forward_dct2(block)), block, atol=1e-6)


class TestZigzag:
    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_order_is_permutation(self, n):
        order = zigzag_order(n)
        assert sorted(order.tolist()) == list(range(n * n))

    def test_order_visits_low_frequencies_first(self):
        order = zigzag_order(8)
        # First three scan positions: DC, then the two frequency-1 coeffs.
        assert order[0] == 0
        assert set(order[1:3].tolist()) == {1, 8}

    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_scan_unscan_roundtrip(self, n):
        rng = np.random.default_rng(n)
        block = rng.integers(-50, 50, (n, n))
        assert np.array_equal(zigzag_unscan(zigzag_scan(block), n), block)

    def test_scan_orders_by_diagonal(self):
        n = 4
        order = zigzag_order(n)
        diagonals = [(idx // n) + (idx % n) for idx in order]
        assert diagonals == sorted(diagonals)
