"""Bit-exactness and semantics of the slice-parallel engine.

The contract under test (ISSUE 3 tentpole): for every worker count and
executor kind, parallel encode and decode produce output *byte-identical*
to the serial path, at the codec, tensor, checkpoint, and distributed
layers.  Plus the pool semantics those guarantees rest on: submission
ordering, earliest-exception propagation, and the closed-form QP dither
fast-forward that lets a slice worker reproduce frame ``i``'s quantizer
sequence without replaying frames ``0 .. i-1``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.decoder import decode_frames
from repro.codec.encoder import EncoderConfig, FrameEncoder, QpDither
from repro.codec.profiles import H265_PROFILE
from repro.distributed.comm import CodecCompressor
from repro.parallel import SERIAL, ParallelConfig, parallel_map
from repro.tensor.checkpoint import load_checkpoint, save_checkpoint
from repro.tensor.codec import TensorCodec


def _frames(n=4, h=64, w=64, seed=11):
    rng = np.random.default_rng(seed)
    base = np.linspace(40, 200, w)[None, :] + np.linspace(-30, 30, h)[:, None]
    return [
        np.clip(base + rng.normal(0, 25, (h, w)), 0, 255).astype(np.uint8)
        for _ in range(n)
    ]


def _tensor(seed=5, edge=64):
    rng = np.random.default_rng(seed)
    u = rng.standard_normal((edge, 4))
    v = rng.standard_normal((4, edge))
    return (u @ v + 0.2 * rng.standard_normal((edge, edge))).astype(np.float32)


# -- pool semantics ----------------------------------------------------


class TestParallelConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelConfig(executor="gpu")
        with pytest.raises(ValueError):
            ParallelConfig(workers=-1)
        with pytest.raises(ValueError):
            ParallelConfig(chunk_size=0)

    def test_is_serial(self):
        assert SERIAL.is_serial()
        assert ParallelConfig(workers=1, executor="thread").is_serial()
        assert ParallelConfig(workers=4, executor="serial").is_serial()
        assert not ParallelConfig(workers=2, executor="thread").is_serial()

    def test_workers_zero_resolves_to_cpu_count(self):
        assert ParallelConfig(workers=0).resolved_workers() >= 1


class TestParallelMap:
    def test_preserves_submission_order(self):
        cfg = ParallelConfig(workers=4, executor="thread")
        items = list(range(40))
        assert parallel_map(lambda x: x * x, items, cfg) == [x * x for x in items]

    def test_serial_flag_forces_fallback(self):
        cfg = ParallelConfig(workers=4, executor="thread")
        out = parallel_map(lambda x: x + 1, [1, 2, 3], cfg, serial=True)
        assert out == [2, 3, 4]

    def test_none_config_is_serial(self):
        assert parallel_map(lambda x: -x, [1, 2], None) == [-1, -2]

    def test_exception_propagates(self):
        cfg = ParallelConfig(workers=2, executor="thread")

        def boom(x):
            if x == 3:
                raise ValueError("item 3")
            return x

        with pytest.raises(ValueError, match="item 3"):
            parallel_map(boom, [1, 2, 3, 4], cfg)


class TestQpDither:
    @pytest.mark.parametrize("frac", [0, 1, 77, 128, 255])
    @pytest.mark.parametrize("steps", [0, 1, 16, 100])
    def test_advanced_matches_stepping(self, frac, steps):
        stepped = QpDither(26, frac)
        for _ in range(steps):
            stepped.next()
        jumped = QpDither.advanced(26, frac, steps)
        # The next 64 QPs must agree exactly.
        assert [stepped.next() for _ in range(64)] == [
            jumped.next() for _ in range(64)
        ]


# -- codec-layer byte identity -----------------------------------------


WORKER_COUNTS = [1, 2, 4]


class TestEncodeDecodeIdentity:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("rd_search", ["vectorized", "turbo"])
    def test_parallel_encode_is_byte_identical(self, workers, rd_search):
        frames = _frames()
        serial = FrameEncoder(
            EncoderConfig(qp=27.0, rd_search=rd_search)
        ).encode(frames)
        par = FrameEncoder(
            EncoderConfig(
                qp=27.0,
                rd_search=rd_search,
                parallel=ParallelConfig(workers=workers, executor="thread"),
            )
        ).encode(frames)
        assert par.data == serial.data
        assert par.mse == pytest.approx(serial.mse)

    def test_process_executor_encode_identical(self):
        frames = _frames(n=3)
        serial = FrameEncoder(EncoderConfig(qp=27.0)).encode(frames)
        par = FrameEncoder(
            EncoderConfig(
                qp=27.0, parallel=ParallelConfig(workers=2, executor="process")
            )
        ).encode(frames)
        assert par.data == serial.data

    def test_fractional_qp_dither_survives_fanout(self):
        # Fractional QPs make the per-CTU quantizer depend on global CTU
        # index -- exactly what QpDither.advanced must reproduce per slice.
        frames = _frames(n=5)
        for rd_search in ("vectorized", "turbo"):
            cfg = dict(qp=26.43, rd_search=rd_search)
            serial = FrameEncoder(EncoderConfig(**cfg)).encode(frames)
            par = FrameEncoder(
                EncoderConfig(
                    **cfg, parallel=ParallelConfig(workers=4, executor="thread")
                )
            ).encode(frames)
            assert par.data == serial.data

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_parallel_decode_matches_serial(self, workers):
        frames = _frames()
        data = FrameEncoder(EncoderConfig(qp=27.0)).encode(frames).data
        serial = decode_frames(data)
        par = decode_frames(
            data, parallel=ParallelConfig(workers=workers, executor="thread")
        )
        assert len(par) == len(serial)
        for a, b in zip(serial, par):
            np.testing.assert_array_equal(a, b)

    def test_inter_streams_fall_back_and_still_match(self):
        # Inter prediction chains frames; both sides must detect the
        # dependency, run serially, and agree with the plain path.
        frames = _frames()
        pool = ParallelConfig(workers=4, executor="thread")
        serial = FrameEncoder(EncoderConfig(qp=27.0, use_inter=True)).encode(frames)
        par = FrameEncoder(
            EncoderConfig(qp=27.0, use_inter=True, parallel=pool)
        ).encode(frames)
        assert par.data == serial.data
        for a, b in zip(decode_frames(serial.data), decode_frames(serial.data, parallel=pool)):
            np.testing.assert_array_equal(a, b)

    def test_single_frame_degenerates_to_serial(self):
        frames = _frames(n=1)
        pool = ParallelConfig(workers=4, executor="thread")
        serial = FrameEncoder(EncoderConfig(qp=27.0)).encode(frames)
        par = FrameEncoder(EncoderConfig(qp=27.0, parallel=pool)).encode(frames)
        assert par.data == serial.data
        np.testing.assert_array_equal(
            decode_frames(serial.data)[0], decode_frames(serial.data, parallel=pool)[0]
        )


# -- tensor / checkpoint / distributed plumbing ------------------------


class TestTensorLayerIdentity:
    def test_tensor_codec_parallel_identity(self):
        tensor = _tensor()
        pool = ParallelConfig(workers=4, executor="thread")
        serial_codec = TensorCodec(tile=32)
        par_codec = TensorCodec(tile=32, parallel=pool)
        a = serial_codec.encode(tensor, qp=27.0)
        b = par_codec.encode(tensor, qp=27.0)
        assert a.data == b.data
        np.testing.assert_array_equal(serial_codec.decode(a), par_codec.decode(b))

    def test_checkpoint_parallel_identity(self, tmp_path):
        tensors = {"w": _tensor(seed=1), "b": _tensor(seed=2, edge=32)}
        plain = tmp_path / "plain.llmckpt"
        fanned = tmp_path / "fanned.llmckpt"
        save_checkpoint(tensors, str(plain), bits_per_value=3.0)
        save_checkpoint(
            tensors,
            str(fanned),
            bits_per_value=3.0,
            parallel=ParallelConfig(workers=4, executor="thread"),
        )
        assert plain.read_bytes() == fanned.read_bytes()
        a = load_checkpoint(str(plain))
        b = load_checkpoint(
            str(fanned), parallel=ParallelConfig(workers=2, executor="thread")
        )
        for key in tensors:
            np.testing.assert_array_equal(a[key], b[key])

    def test_codec_compressor_parallel_identity(self):
        tensor = _tensor().astype(np.float64)
        serial = CodecCompressor(bits_per_value=3.5)
        par = CodecCompressor(
            bits_per_value=3.5,
            parallel=ParallelConfig(workers=4, executor="thread"),
        )
        a, bits_a = serial.compress(tensor, step=0)
        b, bits_b = par.compress(tensor, step=0)
        assert bits_a == pytest.approx(bits_b)
        np.testing.assert_array_equal(a, b)
