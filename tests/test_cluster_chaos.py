"""Cluster chaos soak: contract holds through shard kills; drill path."""

import json
import os

import pytest

from repro.cluster.bench import format_cluster_bench
from repro.cluster.chaos import (
    CLUSTER_TYPED_ERRORS,
    ClusterChaosConfig,
    format_cluster_report,
    run_cluster_chaos,
)
from repro.cluster.router import ClusterUnavailable
from repro.cluster.shard import ShardDown


def small_config(**overrides):
    defaults = dict(
        shards=3,
        replication=2,
        requests=220,
        seed=0,
        base_rate_rps=60.0,
        client_threads=8,
        kills=1,
        revive_after_s=0.8,
        hangs=1,
        hang_s=0.3,
        # The tracked 10k-request baseline asserts 0.999; a 220-request
        # population cannot resolve that finely, so the smoke floor is
        # looser while the zero-violation contract stays absolute.
        availability_slo=0.98,
    )
    defaults.update(overrides)
    return ClusterChaosConfig(**defaults)


class TestTypedVocabulary:
    def test_cluster_errors_extend_the_serving_vocabulary(self):
        assert ShardDown in CLUSTER_TYPED_ERRORS
        assert ClusterUnavailable in CLUSTER_TYPED_ERRORS

    def test_shard_down_is_not_retryable_in_shard(self):
        # The supervisor retries RuntimeError subclasses within a
        # shard; ShardDown must surface to the router instead.
        assert not issubclass(ShardDown, RuntimeError)


class TestSoak:
    @pytest.fixture(scope="class")
    def report(self):
        return run_cluster_chaos(small_config())

    def test_invariant_passes(self, report):
        inv = report["invariant"]
        assert inv["violations"] == []
        assert inv["silent_corruptions"] == 0
        assert inv["untyped_errors"] == 0
        assert inv["availability"] >= inv["availability_slo"]
        assert inv["passed"]

    def test_schedule_killed_a_shard_mid_soak(self, report):
        inv = report["invariant"]
        assert inv["kills"] == 1
        kills = [e for e in report["schedule"] if e["action"] == "kill"]
        revives = [e for e in report["schedule"] if e["action"] == "revive"]
        assert len(kills) == 1 and len(revives) == 1
        assert revives[0]["shard"] == kills[0]["shard"]
        assert report["faults_injected"]["shard"] >= 1

    def test_all_requests_were_checked(self, report):
        checked = report["checked"]
        assert checked["encode"] + checked["decode"] == 220

    def test_report_formats(self, report):
        text = format_cluster_report(report)
        assert "cluster chaos" in text
        assert "PASS" in text

    def test_router_counters_present(self, report):
        router = report["cluster"]["router"]
        for counter in ("requests", "hedges", "failovers",
                        "shard_drained", "probe_timeouts"):
            assert counter in router

    def test_report_is_json_serializable(self, report):
        json.dumps({k: v for k, v in report.items() if k != "config"})


class TestDrill:
    def test_force_violation_fails_and_dumps_postmortem(self, tmp_path):
        report = run_cluster_chaos(
            small_config(
                requests=40, kills=0, hangs=0,
                force_violation=True,
                postmortem_dir=str(tmp_path),
            )
        )
        inv = report["invariant"]
        assert not inv["passed"]
        assert len(inv["violations"]) == 1
        assert "drill" in inv["violations"][0]["reason"]
        assert report["postmortem"] is not None
        assert os.path.exists(report["postmortem"])


class TestBenchFormatting:
    def test_format_cluster_bench_synthetic_doc(self):
        point = {
            "shards": 2, "replication": 2, "requests": 100,
            "availability": 1.0,
            "latency_ms": {"p50": 5.0, "p99": 20.0, "p999": 40.0,
                           "max": 50.0},
            "router": {"hedges": 4, "hedge_wins": 3},
        }
        doc = {
            "schema": "llm265-cluster-bench-v1",
            "shard_sweep": [point],
            "hedge": {
                "shards": 2, "straggler_prob": 0.05,
                "straggler_delay_ms": 250.0,
                "no_hedge": dict(point), "hedged": dict(point),
                "p99_ratio": 1.5,
            },
            "chaos": {
                "requests": 100,
                "invariant": {"availability": 0.999,
                              "availability_slo": 0.999, "passed": True},
                "violation_count": 0,
            },
        }
        text = format_cluster_bench(doc)
        assert "shard sweep" in text
        assert "ratio=1.50x" in text
        assert "PASS" in text
