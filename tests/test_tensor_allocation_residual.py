"""Tests for variable bit allocation, residual gradient compression,
rate control, and the pipeline ablation."""

import numpy as np
import pytest

from repro.codec.encoder import EncoderConfig, encode_frames
from repro.codec.pipeline import PipelineStage, run_pipeline_ablation, stage_config
from repro.codec.ratecontrol import encode_at_qp, search_qp_for_bitrate, search_qp_for_mse
from repro.models.synthetic_weights import gradient_like, weight_like
from repro.tensor.allocation import (
    AllocationResult,
    compress_with_schedule,
    linear_schedule,
    relative_error_loss,
    search_allocation,
)
from repro.tensor.codec import TensorCodec
from repro.tensor.precision import quantize_to_uint8
from repro.tensor.residual import (
    ResidualGradientCompressor,
    paper_average_bits,
)


def _frames(count=2, size=64):
    return [
        quantize_to_uint8(weight_like(size, size, seed=s))[0] for s in range(count)
    ]


class TestRateControl:
    def test_mse_search_meets_target(self):
        frames = _frames()
        qp, result = search_qp_for_mse(frames, max_mse=10.0)
        assert result.mse <= 10.0
        tighter_qp, _ = search_qp_for_mse(frames, max_mse=1.0)
        assert tighter_qp < qp

    def test_bitrate_search_meets_budget(self):
        frames = _frames()
        for budget in (1.5, 3.0, 5.0):
            _, result = search_qp_for_bitrate(frames, budget)
            assert result.bits_per_value <= budget + 1e-9

    def test_unreachable_budget_returns_coarsest(self):
        frames = _frames(count=1, size=32)
        _, result = search_qp_for_bitrate(frames, 0.0001)
        assert result.bits_per_value > 0.0001  # best effort, flagged by caller

    def test_encode_at_qp_matches_direct(self):
        frames = _frames(count=1)
        direct = encode_frames(frames, EncoderConfig(qp=20.0)).data
        assert encode_at_qp(frames, 20.0).data == direct


class TestPipelineAblation:
    @pytest.fixture(scope="class")
    def results(self):
        return run_pipeline_ablation(_frames(count=2, size=64), pixel_mse_target=5.0)

    def test_all_stages_present(self, results):
        stages = [r.stage for r in results]
        assert stages == list(PipelineStage)

    def test_raw_stage_is_8_bits(self, results):
        assert results[0].bits_per_value == 8.0

    def test_entropy_stage_is_lossless_and_smaller(self, results):
        entropy = results[1]
        assert entropy.pixel_mse == 0.0
        assert entropy.bits_per_value < 8.0

    def test_each_tool_reduces_or_holds_bits(self, results):
        bits = [r.bits_per_value for r in results]
        # Stages 1-5 are monotone non-increasing; inter may not help.
        assert bits[1] < bits[0]
        assert bits[2] < bits[1]
        assert bits[3] <= bits[2] + 0.1
        assert bits[4] <= bits[3] + 0.1

    def test_inter_does_not_help_tensors(self, results):
        """The paper's Figure 2(b) step 5 -> 6 finding.

        Our RD-optimised encoder only picks inter when it wins a coin
        flip of noise, so "does not help" shows as a <=0.1-bit wiggle
        rather than the paper's visible increase (their encoder pays
        fixed P-frame overhead).
        """
        intra = next(r for r in results if r.stage == PipelineStage.INTRA)
        inter = next(r for r in results if r.stage == PipelineStage.INTER)
        assert inter.bits_per_value >= intra.bits_per_value - 0.1

    def test_lossy_stages_respect_mse(self, results):
        for r in results[2:]:
            assert r.pixel_mse <= 5.0

    def test_inter_skipped_for_single_frame(self):
        results = run_pipeline_ablation(_frames(count=1), pixel_mse_target=5.0)
        assert PipelineStage.INTER not in [r.stage for r in results]

    def test_stage_config_flags(self):
        from repro.codec.profiles import H265_PROFILE

        transform = stage_config(PipelineStage.TRANSFORM, H265_PROFILE)
        assert not transform.use_intra and not transform.use_partition
        intra = stage_config(PipelineStage.INTRA, H265_PROFILE)
        assert intra.use_intra and intra.use_partition and not intra.use_inter
        inter = stage_config(PipelineStage.INTER, H265_PROFILE)
        assert inter.use_inter
        with pytest.raises(ValueError):
            stage_config(PipelineStage.ENTROPY, H265_PROFILE)


class TestAllocation:
    def test_linear_schedule_hits_average(self):
        budgets = linear_schedule(8, 3.0, k=0.1)
        assert np.mean(budgets) == pytest.approx(3.0, abs=0.01)

    def test_zero_slope_is_uniform(self):
        budgets = linear_schedule(5, 2.5, k=0.0)
        assert np.allclose(budgets, 2.5)

    def test_negative_slope_gives_early_layers_more(self):
        budgets = linear_schedule(6, 3.0, k=-0.2)
        assert budgets[0] > budgets[-1]

    def test_floor_respected(self):
        budgets = linear_schedule(10, 1.0, k=-0.5)
        assert min(budgets) >= 0.4 - 1e-9

    def test_empty_layer_list_rejected(self):
        with pytest.raises(ValueError):
            linear_schedule(0, 3.0, 0.0)

    def test_compress_with_schedule_validates_lengths(self):
        codec = TensorCodec(tile=64)
        with pytest.raises(ValueError):
            compress_with_schedule(codec, [np.ones((8, 8))], [2.0, 3.0])

    def test_search_allocation_returns_best_k(self):
        codec = TensorCodec(tile=64)
        # Layers with very different difficulty: slope should matter.
        layers = [
            weight_like(48, 48, std=0.02 * (1 + i), seed=i) for i in range(3)
        ]
        result = search_allocation(codec, layers, avg_bits=2.5, k_grid=(-0.3, 0.0, 0.3))
        assert isinstance(result, AllocationResult)
        assert result.k in (-0.3, 0.0, 0.3)
        assert result.average_bits < 3.2
        assert len(result.compressed) == 3

    def test_relative_error_loss(self):
        a = [np.ones((4, 4))]
        assert relative_error_loss(a, [np.ones((4, 4))]) == 0.0


class TestSensitivitySchedule:
    def test_budgets_average_to_target(self):
        from repro.tensor.allocation import sensitivity_schedule

        codec = TensorCodec(tile=64)
        layers = [weight_like(48, 48, std=0.02 * (1 + i), seed=i) for i in range(3)]
        budgets = sensitivity_schedule(codec, layers, avg_bits=2.5)
        assert np.mean(budgets) == pytest.approx(2.5, abs=0.05)
        assert min(budgets) >= 0.4 - 1e-9

    def test_sensitive_layers_get_more_bits(self):
        from repro.tensor.allocation import sensitivity_schedule

        codec = TensorCodec(tile=64)
        rng = np.random.default_rng(0)
        easy = np.full((48, 48), 0.5) + rng.normal(0, 1e-4, (48, 48))
        hard = rng.normal(0, 1.0, (48, 48))
        budgets = sensitivity_schedule(codec, [easy, hard], avg_bits=3.0)
        assert budgets[1] > budgets[0]

    def test_probe_validation(self):
        from repro.tensor.allocation import sensitivity_schedule

        codec = TensorCodec(tile=64)
        with pytest.raises(ValueError):
            sensitivity_schedule(codec, [np.ones((8, 8))], 3.0, probe_bits=(3.0, 1.5))


class TestResidualCompression:
    def test_paper_average_formula(self):
        assert paper_average_bits() == pytest.approx(
            ((3.5 + 3.5) * 2500 + (3.5 + 8) * 5500) / 8000
        )

    def test_stage_switch_changes_bits(self):
        codec = TensorCodec(tile=64)
        compressor = ResidualGradientCompressor(codec, switch_step=2)
        grad = gradient_like(48, 48, seed=1).astype(np.float64)
        compressor.compress(grad, step=0)
        compressor.compress(grad, step=5)
        early, late = compressor.history
        assert early.residual_bits < late.residual_bits  # 3.5 -> ~8 bits

    def test_residual_improves_reconstruction(self):
        codec = TensorCodec(tile=64)
        compressor = ResidualGradientCompressor(codec)
        grad = gradient_like(48, 48, seed=2).astype(np.float64)
        restored = compressor.compress(grad, step=0)
        base = codec.decode(codec.encode(grad, bits_per_value=3.5))
        assert np.mean((restored - grad) ** 2) < np.mean((base - grad) ** 2)

    def test_average_bits_tracks_history(self):
        codec = TensorCodec(tile=64)
        compressor = ResidualGradientCompressor(codec, switch_step=1)
        grad = gradient_like(32, 32, seed=3).astype(np.float64)
        assert compressor.average_bits == 0.0
        compressor.compress(grad, step=0)
        compressor.compress(grad, step=2)
        assert compressor.average_bits == pytest.approx(
            np.mean([s.total_bits for s in compressor.history])
        )
