"""MetricsSnapshot capture, Prometheus rendering, periodic snapshotter."""

import json
import time

import pytest

import repro.telemetry as telemetry
from repro.telemetry.metrics import (
    METRICS_SCHEMA,
    MetricsSnapshot,
    PeriodicSnapshotter,
    render_prometheus,
)


def _active_snapshot():
    with telemetry.session(trace=True) as registry:
        telemetry.count("encode.frames", 4)
        telemetry.observe("serving.latency_s", 0.02)
        with telemetry.span("tensor.encode"):
            pass
        return MetricsSnapshot.capture(registry=registry)


class TestCapture:
    def test_captures_registry_sections(self):
        snapshot = _active_snapshot()
        assert snapshot.counters["encode.frames"] == 4
        assert snapshot.histograms["serving.latency_s"]["count"] == 1
        assert snapshot.spans["tensor.encode"]["calls"] == 1
        assert snapshot.trace_events == 1
        assert snapshot.recorder is not None

    def test_capture_without_telemetry(self):
        assert telemetry.current() is None
        snapshot = MetricsSnapshot.capture()
        assert snapshot.counters == {}
        assert snapshot.slo is None

    def test_to_dict_shape(self):
        doc = _active_snapshot().to_dict()
        assert doc["schema"] == METRICS_SCHEMA
        assert {"counters", "histograms", "spans", "trace_events",
                "dropped_events", "max_trace_events", "recorder",
                "created_unix"} <= set(doc)
        # No serving components attached -> their keys are absent, so
        # the pre-snapshot CodecService.stats() key set stays honest.
        assert "slo" not in doc and "broker" not in doc
        json.dumps(doc)  # must be JSON-clean as-is

    def test_serving_sections_survive_top_level(self):
        snapshot = MetricsSnapshot.capture(
            slo={"requests": 1}, broker={"admitted": 1},
            ladder={"rungs": []}, supervisor={"retries": 0},
        )
        doc = snapshot.to_dict()
        assert doc["slo"] == {"requests": 1}
        assert doc["broker"]["admitted"] == 1

    def test_dropped_events_and_cap_exported(self):
        with telemetry.session(trace=True) as registry:
            registry.dropped_events = 7
            snapshot = MetricsSnapshot.capture(registry=registry)
        doc = snapshot.to_dict()
        assert doc["dropped_events"] == 7
        assert doc["max_trace_events"] == telemetry.MAX_TRACE_EVENTS


class TestPrometheus:
    def test_rendering_covers_every_section(self):
        snapshot = _active_snapshot()
        snapshot.slo = {
            "availability": 0.99,
            "outcomes": {"ok": 9, "error": 1},
            "latency_ms": {"p50": 1.0, "p99": 2.0},
        }
        snapshot.broker = {"inflight": 0, "queued": 0,
                          "admitted": 10, "shed": 1}
        snapshot.ladder = {"breakers": [
            {"name": "rung.turbo", "state": "open", "trips": 2},
        ]}
        snapshot.supervisor = {"retries": 3}
        text = render_prometheus(snapshot)
        assert "# TYPE llm265_encode_frames counter" in text
        assert "llm265_encode_frames 4" in text
        assert "llm265_serving_latency_s_count 1" in text
        assert 'llm265_span_calls_total{path="tensor.encode"} 1' in text
        assert "llm265_slo_availability 0.99" in text
        assert 'llm265_slo_requests_total{outcome="ok"} 9' in text
        assert "llm265_broker_shed 1" in text
        assert 'llm265_breaker_open{rung="rung.turbo"} 1' in text
        assert 'llm265_breaker_trips_total{rung="rung.turbo"} 2' in text
        assert "llm265_supervisor_retries_total 3" in text
        assert text.endswith("\n")

    def test_metric_names_sanitized(self):
        snapshot = MetricsSnapshot(created_unix=0.0,
                                   counters={"weird metric/name": 1})
        text = render_prometheus(snapshot)
        assert "llm265_weird_metric_name 1" in text


class TestPeriodicSnapshotter:
    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            PeriodicSnapshotter(MetricsSnapshot.capture,
                                str(tmp_path / "m.json"), render="xml")
        with pytest.raises(ValueError):
            PeriodicSnapshotter(MetricsSnapshot.capture,
                                str(tmp_path / "m.json"), interval_s=0)

    def test_writes_on_start_and_stop(self, tmp_path):
        path = tmp_path / "metrics.json"
        snapshotter = PeriodicSnapshotter(
            MetricsSnapshot.capture, str(path), interval_s=60.0,
        ).start()
        try:
            assert path.exists(), "start() writes immediately"
            first = json.loads(path.read_text())
            assert first["schema"] == METRICS_SCHEMA
        finally:
            snapshotter.stop()
        assert snapshotter.writes == 2  # start + final flush
        assert json.loads(path.read_text())["created_unix"] >= (
            first["created_unix"]
        )
        assert not list(tmp_path.glob("*.tmp.*")), "writes are atomic"

    def test_periodic_ticks(self, tmp_path):
        path = tmp_path / "metrics.prom"
        snapshotter = PeriodicSnapshotter(
            MetricsSnapshot.capture, str(path), interval_s=0.02,
            render="prometheus",
        ).start()
        try:
            deadline = time.monotonic() + 2.0
            while snapshotter.writes < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            snapshotter.stop()
        assert snapshotter.writes >= 3
        assert "llm265_trace_events" in path.read_text()

    def test_double_start_rejected(self, tmp_path):
        snapshotter = PeriodicSnapshotter(
            MetricsSnapshot.capture, str(tmp_path / "m.json"),
        ).start()
        try:
            with pytest.raises(RuntimeError):
                snapshotter.start()
        finally:
            snapshotter.stop()

    def test_service_snapshotter_roundtrip(self, tmp_path):
        import numpy as np

        from repro.serving.service import CodecService, ServiceConfig

        service = CodecService(ServiceConfig(tile=32, seed=0))
        service.encode(np.zeros((32, 32), dtype=np.float32), qp=26.0)
        path = tmp_path / "service.json"
        snapshotter = service.start_snapshotter(str(path), interval_s=60.0)
        snapshotter.stop()
        doc = json.loads(path.read_text())
        assert doc["slo"]["requests"] == 1
        assert doc["schema"] == METRICS_SCHEMA
