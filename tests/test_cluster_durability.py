"""Tests for the durability chaos soak and its CLI surfaces.

A scaled-down soak must hold the full invariant (0 acked writes lost,
0 silent corruption, replication healed); the drill switch must
exercise the violation/postmortem path without breaking anything; the
``llm265 verify`` store scanner must map clean / torn / corrupt onto
exit codes 0 / 3 / 2; and real container-v3 payloads must round-trip
through the durable path bit-exact.
"""

import json
import os
import struct

import numpy as np
import pytest

import repro.telemetry as telemetry
from repro.cli import main
from repro.cluster import ClusterConfig, ClusterRouter
from repro.cluster.durability import (
    DURABILITY_TYPED_ERRORS,
    DurabilityChaosConfig,
    format_durability_report,
    run_durability_chaos,
)
from repro.cluster.store import ShardStore, StoreError


def small_config(tmp_path, **overrides):
    settings = dict(
        shards=3,
        replication=2,
        ops=220,
        seed=0,
        base_rate_rps=150.0,
        client_threads=6,
        kills=2,
        revive_after_s=0.25,
        arm_timeout_s=1.0,
        disk_faults=2,
        scrub_interval_s=0.1,
        store_root=str(tmp_path / "soak"),
    )
    settings.update(overrides)
    return DurabilityChaosConfig(**settings)


class TestDurabilitySoak:
    def test_small_soak_holds_the_full_invariant(self, tmp_path):
        report = run_durability_chaos(small_config(tmp_path))
        inv = report["invariant"]
        assert inv["passed"], inv["violations"]
        assert inv["acked_lost"] == []
        assert inv["silent_corruptions"] == 0
        assert inv["under_replicated"] == []
        assert (
            inv["mid_write_kills"] + inv["fallback_kills"]
            >= inv["kills_required"]
        )
        assert inv["repair_converged"]
        assert inv["acked_writes"] > 0
        # Every scheduled operation ran and was judged.
        assert report["checked"]["put"] + report["checked"]["get"] == 220
        # The report is JSON-serialisable as-is (the CLI merges it).
        json.dumps(report, default=str)
        text = format_durability_report(report)
        assert "invariant: PASS" in text

    def test_soak_is_seeded_reproducible(self, tmp_path):
        first = run_durability_chaos(
            small_config(tmp_path / "a", kills=1, disk_faults=1, ops=80)
        )
        second = run_durability_chaos(
            small_config(tmp_path / "b", kills=1, disk_faults=1, ops=80)
        )
        # Same seed, same schedule: kill stages/targets and fault times
        # are identical even though thread timing is not.
        assert first["schedule"] == second["schedule"]
        assert first["invariant"]["acked_writes"] == (
            second["invariant"]["acked_writes"]
        )

    def test_drill_violation_trips_verdict_and_postmortem(self, tmp_path):
        pm_dir = str(tmp_path / "pm")
        report = run_durability_chaos(
            small_config(
                tmp_path,
                ops=60,
                kills=0,
                disk_faults=0,
                force_violation=True,
                postmortem_dir=pm_dir,
            )
        )
        inv = report["invariant"]
        assert not inv["passed"]
        assert any(
            v["reason"].startswith("drill") for v in inv["violations"]
        )
        # The drill is synthetic: nothing was actually lost.
        assert inv["acked_lost"] == [] and inv["silent_corruptions"] == 0
        bundle = report["postmortem"]
        assert bundle and os.path.exists(bundle)
        doc = json.load(open(bundle))
        assert doc["reason"] == "durability-chaos-violation"
        assert doc["seed"] == 0
        assert doc["extra"]["invariant"]["passed"] is False
        assert "invariant: FAIL" in format_durability_report(report)

    def test_typed_error_vocabulary_covers_the_store(self):
        from repro.cluster.router import WriteQuorumFailed
        from repro.cluster.store import NotFound, Quarantined

        for error in (
            NotFound("k"),
            Quarantined("k", "checksum mismatch"),
            WriteQuorumFailed("k", 1, 2),
        ):
            assert isinstance(error, DURABILITY_TYPED_ERRORS)
        assert not isinstance(RuntimeError("x"), DURABILITY_TYPED_ERRORS)

    def test_disk_fault_counters_are_recorded(self, tmp_path):
        from repro.resilience.faults import FaultInjector

        with telemetry.session() as registry:
            injector = FaultInjector(seed=3)
            for index, name in enumerate(("a", "b", "c")):
                path = str(tmp_path / name)
                with open(path, "wb") as handle:
                    handle.write(os.urandom(64))
            injector.file_bit_flip(str(tmp_path / "a"))
            injector.file_truncate(str(tmp_path / "b"))
            injector.file_unlink(str(tmp_path / "c"))
            counters = dict(registry.counters)
        assert counters["faults.disk.bit_flips"] == 1
        assert counters["faults.disk.truncations"] == 1
        assert counters["faults.disk.unlinks"] == 1
        assert counters["faults.injected"] == 3


class TestContainerPayloads:
    def test_container_v3_round_trips_through_the_durable_path(
        self, tmp_path
    ):
        from repro.tensor.codec import CompressedTensor, TensorCodec

        rng = np.random.default_rng(7)
        tensor = rng.standard_normal((64, 64)).astype(np.float32)
        codec = TensorCodec(tile=32)
        blob = codec.encode(tensor, qp=24.0).to_bytes()

        config = ClusterConfig(
            shards=3, replication=2, hedge=False,
            store_root=str(tmp_path / "stores"), store_fsync=False,
        )
        with ClusterRouter(config) as router:
            assert router.put(blob, "weights/blocks.0").ok
            served = router.get("weights/blocks.0")
            assert served.ok and served.value == blob
        # The served bytes are a *valid container*, not merely equal:
        # decode must reconstruct the tensor within codec tolerance.
        decoded = codec.decode(CompressedTensor.from_bytes(served.value))
        assert decoded.shape == tensor.shape
        assert float(np.mean((decoded - tensor) ** 2)) < 1.0


class TestVerifyCli:
    @pytest.fixture
    def store_dir(self, tmp_path):
        store = ShardStore(str(tmp_path / "s0"), shard_id="s0")
        store.put("a", b"payload-a" * 30, 1)
        store.put("b", b"payload-b" * 30, 2)
        store.close()
        return store

    def test_clean_store_exits_zero(self, store_dir, capsys):
        assert main(["verify", store_dir.directory, "--deep"]) == 0
        assert "OK (store" in capsys.readouterr().out

    def test_torn_tail_exits_three(self, store_dir, capsys):
        with open(store_dir._journal_path(), "ab") as handle:
            handle.write(struct.pack("<II", 4096, 0))
        assert main(["verify", store_dir.directory]) == 3
        out = capsys.readouterr().out
        assert "TORN" in out and "[torn]" in out

    def test_corruption_exits_two_even_with_a_torn_tail(
        self, store_dir, capsys
    ):
        with open(store_dir._journal_path(), "ab") as handle:
            handle.write(struct.pack("<II", 4096, 0))
        segment = store_dir._segment_path(store_dir.digest()["a"][1])
        with open(segment, "r+b") as handle:
            handle.write(b"\x00\x01")
        assert main(["verify", store_dir.directory, "--deep"]) == 2
        assert "DAMAGED" in capsys.readouterr().out

    def test_verify_is_read_only(self, store_dir):
        with open(store_dir._journal_path(), "ab") as handle:
            handle.write(b"\xde\xad")
        before = os.path.getsize(store_dir._journal_path())
        main(["verify", store_dir.directory])
        assert os.path.getsize(store_dir._journal_path()) == before
        # Crash recovery (not verify) is what repairs the tail.
        store = ShardStore(store_dir.directory, shard_id="s0")
        assert store.get("a") == b"payload-a" * 30


class TestChaosCli:
    def test_durability_quick_soak_passes_and_writes_json(
        self, tmp_path, capsys
    ):
        out_json = str(tmp_path / "report.json")
        code = main([
            "chaos", "--durability", "--quick", "--seed", "1",
            "--output", out_json,
        ])
        captured = capsys.readouterr().out
        assert code == 0, captured
        assert "invariant: PASS" in captured
        doc = json.load(open(out_json))
        inv = doc["durability_chaos"]["invariant"]
        assert inv["passed"] and inv["mid_write_kills"] >= 1

    def test_kills_default_is_resolved_per_soak_mode(self):
        from repro.cli import _build_parser

        args = _build_parser().parse_args(["chaos", "--durability"])
        assert args.durability
        assert args.kills is None  # resolved per mode, 3 for durability
