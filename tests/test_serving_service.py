"""End-to-end tests of :class:`repro.serving.service.CodecService`:
the typed-response contract, degradation, concealment, deadlines, and
admission control."""

import time

import numpy as np
import pytest

from repro.resilience.deadline import DeadlineExceeded
from repro.resilience.errors import CorruptStreamError
from repro.resilience.faults import RetryPolicy
from repro.serving import (
    CodecService,
    Overloaded,
    RetriesExhausted,
    ServiceConfig,
    WorkerCrashed,
)
from repro.tensor.codec import CompressedTensor, TensorCodec


@pytest.fixture(scope="module")
def tensor():
    return np.random.default_rng(11).standard_normal((32, 32)).astype(np.float32)


def make_service(**overrides):
    defaults = dict(
        tile=32,
        deadline_s=10.0,
        attempt_timeout_s=1.0,
        retry=RetryPolicy(max_retries=2, backoff_base_s=0.001),
    )
    defaults.update(overrides)
    return CodecService(ServiceConfig(**defaults))


class GateScript:
    """Fault gate that raises/sleeps per scripted call, then passes."""

    def __init__(self, *actions):
        self.actions = list(actions)
        self.calls = 0

    def __call__(self, kind):
        self.calls += 1
        if self.actions:
            action = self.actions.pop(0)
            if action is not None:
                action()


def _raise(exc):
    def inner():
        raise exc
    return inner


class TestHealthyPath:
    def test_encode_is_bit_exact_with_serial_reference(self, tensor):
        service = make_service()
        response = service.encode(tensor, qp=26.0)
        assert response.ok and not response.degraded
        assert response.retries == 0
        reference = TensorCodec(
            tile=32, rd_search={
                r.name: r.rd_search for r in service.ladder.rungs
            }[response.rung]
        ).encode(tensor, qp=26.0)
        assert response.value.to_bytes() == reference.to_bytes()

    def test_decode_roundtrip(self, tensor):
        service = make_service()
        blob = service.encode(tensor, qp=26.0).value.to_bytes()
        response = service.decode(blob)
        assert response.ok and not response.degraded
        expected = TensorCodec(tile=32).decode(CompressedTensor.from_bytes(blob))
        assert np.array_equal(response.value, expected)
        assert response.report is not None and response.report.clean

    def test_slo_records_every_request(self, tensor):
        service = make_service()
        service.encode(tensor, qp=26.0)
        blob = service.encode(tensor, qp=26.0).value.to_bytes()
        service.decode(blob)
        snap = service.slo.snapshot()
        assert snap["requests"] == 3
        assert snap["outcomes"]["ok"] == 3
        assert snap["latency_ms"]["p50"] > 0.0

    def test_response_never_raises_on_bad_targets(self, tensor):
        service = make_service()
        response = service.encode(tensor, qp=26.0, bits_per_value=2.0)
        assert not response.ok
        assert response.error_type == "ValueError"
        assert service.slo.snapshot()["outcomes"]["error"] == 1


class TestFaultRecovery:
    def test_injected_crash_recovered_by_retry(self, tensor):
        gate = GateScript(_raise(WorkerCrashed("injected")))
        service = make_service()
        response = service.encode(tensor, qp=26.0, fault_gate=gate)
        assert response.ok
        assert response.retries == 1
        assert gate.calls == 2

    def test_hang_recovered_within_bounded_time(self, tensor):
        gate = GateScript(lambda: time.sleep(1.0))
        service = make_service(attempt_timeout_s=0.15)
        started = time.perf_counter()
        response = service.encode(tensor, qp=26.0, fault_gate=gate)
        assert response.ok
        assert response.retries >= 1
        assert time.perf_counter() - started < 2.0

    def test_persistent_failure_steps_down_ladder(self, tensor):
        boom = RuntimeError("backend down")
        # Enough failures to exhaust retries on the first rung, then
        # succeed on the next one.
        gate = GateScript(*[_raise(boom)] * 3)
        service = make_service()
        response = service.encode(tensor, qp=26.0, fault_gate=gate)
        assert response.ok
        assert response.ladder_steps == 1
        assert response.rung == "vectorized"
        assert service.ladder.breakers[0].stats()["consecutive_failures"] == 1

    def test_total_failure_is_typed_retries_exhausted(self, tensor):
        gate = GateScript(*[_raise(RuntimeError("down"))] * 99)
        service = make_service()
        response = service.encode(tensor, qp=26.0, fault_gate=gate)
        assert not response.ok
        assert isinstance(response.error, RetriesExhausted)
        assert response.rung == "legacy"  # fell all the way down

    def test_breaker_trips_and_turbo_is_skipped(self, tensor):
        service = make_service(breaker_failure_threshold=1,
                               breaker_cooldown_s=60.0)
        gate = GateScript(*[_raise(RuntimeError("down"))] * 3)
        first = service.encode(tensor, qp=26.0, fault_gate=gate)
        assert first.ok and first.rung == "vectorized"
        assert service.ladder.breakers[0].state == "open"
        second = service.encode(tensor, qp=26.0)  # healthy gate
        assert second.ok and second.rung == "vectorized"


class TestDamagedInputs:
    def _blob(self, tensor):
        return TensorCodec(tile=32).encode(tensor, qp=26.0).to_bytes()

    def test_payload_damage_degrades_with_report(self, tensor):
        blob = bytearray(self._blob(tensor))
        blob[-30] ^= 0x40  # inside the frame-slice payload
        response = make_service().decode(bytes(blob))
        assert response.ok
        assert response.degraded
        assert response.rung == "concealed"
        assert response.concealed >= 1
        assert not response.report.clean

    def test_metadata_damage_is_typed_not_concealed(self, tensor):
        blob = bytearray(self._blob(tensor))
        blob[8] ^= 0x01  # container metadata: concealment cannot patch this
        response = make_service().decode(bytes(blob))
        assert not response.ok
        assert isinstance(response.error, CorruptStreamError)
        assert _outcome(response) == "error"

    def test_truncated_payload_degrades(self, tensor):
        blob = self._blob(tensor)
        response = make_service().decode(blob[:-20])
        assert response.ok and response.degraded
        assert response.concealed >= 1

    def test_garbage_input_is_typed(self):
        response = make_service().decode(b"definitely not a container")
        assert not response.ok
        assert isinstance(response.error, CorruptStreamError)


def _outcome(response):
    if response.ok:
        return "degraded" if response.degraded else "ok"
    if isinstance(response.error, Overloaded):
        return "shed"
    if isinstance(response.error, DeadlineExceeded):
        return "deadline"
    return "error"


class TestDeadlinesAndAdmission:
    def test_tiny_deadline_times_out_cleanly(self, tensor):
        service = make_service()
        response = service.encode(tensor, qp=26.0, deadline_s=0.0005)
        assert not response.ok
        assert isinstance(response.error, DeadlineExceeded)
        assert response.value is None
        assert service.slo.snapshot()["outcomes"]["deadline"] == 1

    def test_saturated_service_sheds_typed(self, tensor):
        service = make_service(max_inflight=1, max_queue=0)
        service.broker.acquire()  # occupy the only slot
        try:
            response = service.encode(tensor, qp=26.0)
        finally:
            service.broker.release()
        assert not response.ok
        assert isinstance(response.error, Overloaded)
        assert service.slo.snapshot()["outcomes"]["shed"] == 1

    def test_stats_document_shape(self, tensor):
        service = make_service()
        service.encode(tensor, qp=26.0)
        stats = service.stats()
        # The serving sections survive under their PR 4 keys; the
        # document is now the llm265-metrics-v1 snapshot, which adds
        # observability sections on top.
        assert {"slo", "broker", "ladder", "supervisor"} <= set(stats)
        assert stats["schema"] == "llm265-metrics-v1"
        assert "counters" in stats and "recorder" in stats
        assert stats["slo"]["requests"] == 1
        assert stats["broker"]["admitted"] == 1

    def test_worker_spans_land_under_the_request_trace(self, tensor):
        """The tentpole acceptance check: encode work executed on
        supervised worker threads shows up in the dispatcher's registry
        as child spans of the owning request, and its span events carry
        the request's trace id."""
        import repro.telemetry as telemetry

        service = make_service()
        with telemetry.session(trace=True) as registry:
            encoded = service.encode(tensor, qp=26.0)
            assert encoded.ok
            decoded = service.decode(encoded.value.to_bytes())
            assert decoded.ok
        assert encoded.trace_id.startswith("encode-")
        assert decoded.trace_id.startswith("decode-")
        assert encoded.trace_id != decoded.trace_id
        # Worker-side codec spans, reparented under the request +
        # attempt that dispatched them.
        encode_paths = [p for p in registry.spans
                        if p.startswith("serving.encode/attempt[")]
        assert any("frames.encode" in p for p in encode_paths)
        decode_paths = [p for p in registry.spans
                        if p.startswith("serving.decode/attempt[")]
        assert any("decode" in p.split("/", 2)[-1] for p in decode_paths)
        # Every span event recorded inside the request carries its id.
        for trace_id, root in ((encoded.trace_id, "serving.encode"),
                               (decoded.trace_id, "serving.decode")):
            tagged = [e for e in registry.events
                      if e["args"].get("trace") == trace_id]
            assert any(e["args"]["path"] == root for e in tagged)
            assert any("/" in e["args"]["path"] for e in tagged), (
                "worker-side events must be tagged too")
        assert registry.counters["telemetry.worker_deltas_merged"] >= 2

    def test_stats_matches_snapshot_type(self, tensor):
        service = make_service()
        service.encode(tensor, qp=26.0)
        snapshot = service.snapshot()
        assert snapshot.slo["requests"] == 1
        assert service.stats().keys() == snapshot.to_dict().keys()
        text = service.metrics_text()
        assert 'llm265_slo_requests_total{outcome="ok"} 1' in text
        assert "llm265_slo_availability 1.0" in text
