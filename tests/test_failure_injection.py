"""Failure injection: corrupt bitstreams, hostile inputs, edge shapes.

A codec that silently returns garbage on a damaged stream is worse
than one that fails loudly; these tests pin down the failure behaviour
of every deserialisation path.
"""

import numpy as np
import pytest

from repro.codec.decoder import decode_frames
from repro.codec.encoder import EncoderConfig, encode_frames
from repro.codec.entropy.huffman import huffman_decompress
from repro.codec.entropy.lz4 import lz4_decompress
from repro.models.synthetic_weights import weight_like
from repro.resilience.errors import CorruptStreamError
from repro.tensor.codec import CompressedTensor, TensorCodec
from repro.tensor.precision import quantize_to_uint8


@pytest.fixture(scope="module")
def stream():
    frame = quantize_to_uint8(weight_like(32, 32, seed=0))[0]
    return encode_frames([frame], EncoderConfig(qp=20)).data


class TestCorruptStreams:
    def test_truncated_header_rejected(self, stream):
        with pytest.raises(CorruptStreamError):
            decode_frames(stream[:10])

    def test_wrong_magic_rejected(self, stream):
        with pytest.raises(CorruptStreamError):
            decode_frames(b"XXXX" + stream[4:])

    def test_wrong_version_rejected(self, stream):
        bad = bytearray(stream)
        bad[4] = 99
        with pytest.raises(CorruptStreamError):
            decode_frames(bytes(bad))

    def test_payload_corruption_is_contained(self, stream):
        """Flipping payload bytes must raise CorruptStreamError (the
        single failure type of every deserialisation path) or decode to
        a frame -- never hang, never crash the interpreter, never leak
        a low-level EOFError/IndexError."""
        rng = np.random.default_rng(0)
        for _ in range(20):
            bad = bytearray(stream)
            pos = rng.integers(20, len(bad))
            bad[pos] ^= 0xFF
            try:
                frames = decode_frames(bytes(bad))
                assert frames[0].shape == (32, 32)
            except CorruptStreamError:
                pass  # loud, typed failure is the contract

    def test_truncated_payload_is_contained(self, stream):
        for cut in (len(stream) // 2, len(stream) - 3):
            try:
                frames = decode_frames(stream[:cut])
                assert frames[0].shape == (32, 32)
            except CorruptStreamError:
                pass


class TestCorruptByteCoders:
    def test_huffman_truncated(self):
        from repro.codec.entropy.huffman import huffman_compress

        blob = huffman_compress(b"hello world" * 20)
        with pytest.raises(CorruptStreamError):
            huffman_decompress(blob[: len(blob) - 4])

    def test_lz4_bad_offset(self):
        import struct

        # Declared length 8, one sequence with a match pointing before
        # the start of the output buffer.
        blob = struct.pack("<I", 8) + bytes([0x12, ord("a"), 0xFF, 0x00])
        with pytest.raises(CorruptStreamError):
            lz4_decompress(blob)


class TestCompressedTensorRobustness:
    def test_from_bytes_requires_header(self):
        with pytest.raises(CorruptStreamError):
            CompressedTensor.from_bytes(b"\x00\x00")

    def test_roundtrip_preserves_through_serialization(self):
        codec = TensorCodec(tile=64)
        tensor = weight_like(20, 30, seed=1)
        compressed = codec.encode(tensor, qp=16)
        revived = CompressedTensor.from_bytes(compressed.to_bytes())
        assert np.array_equal(codec.decode(compressed), codec.decode(revived))


class TestEdgeShapes:
    @pytest.mark.parametrize(
        "shape", [(1, 1), (1, 100), (100, 1), (9, 13), (8, 8), (65, 31)]
    )
    def test_odd_shapes_roundtrip(self, shape):
        codec = TensorCodec(tile=64)
        rng = np.random.default_rng(sum(shape))
        tensor = rng.normal(0, 0.1, shape).astype(np.float32)
        restored, compressed = codec.roundtrip(tensor, qp=10)
        assert restored.shape == shape
        span = float(tensor.max() - tensor.min()) or 1.0
        assert np.max(np.abs(restored - tensor)) < 0.35 * span

    def test_scalar_tensor(self):
        codec = TensorCodec(tile=64)
        restored, _ = codec.roundtrip(np.array(3.14, dtype=np.float32), qp=10)
        assert restored.shape == ()
        assert restored == pytest.approx(3.14, abs=0.1)

    def test_extreme_values(self):
        codec = TensorCodec(tile=64)
        tensor = np.array([[1e30, -1e30], [0.0, 1.0]], dtype=np.float64)
        restored, _ = codec.roundtrip(tensor, qp=4)
        assert np.all(np.isfinite(restored))
        assert restored[0, 0] == pytest.approx(1e30, rel=0.05)

    def test_nan_rejected_or_contained(self):
        codec = TensorCodec(tile=64)
        tensor = np.array([[np.nan, 1.0]], dtype=np.float64)
        try:
            restored, _ = codec.roundtrip(tensor, qp=10)
            # If accepted, non-NaN values must survive sanely.
            assert np.isfinite(restored[0, 1])
        except ValueError:
            pass

    def test_integer_dtype_tensor(self):
        codec = TensorCodec(tile=64)
        tensor = np.arange(64, dtype=np.int64).reshape(8, 8)
        restored, compressed = codec.roundtrip(tensor, qp=4)
        assert compressed.dtype == "int64"
        assert np.max(np.abs(restored.astype(float) - tensor)) <= 2
