"""Tests for quorum-durable routing and anti-entropy re-replication.

The router half: a put is acknowledged only at write quorum, a get
fails over past dead or damaged replicas and is bit-exact or typed.
The repair half: digest exchange, (version, hash) winner election,
re-replication until the ring's R-way invariant holds -- plus the
revive-ordering regression (a recovering shard must refuse probes
until its journal replay finishes).
"""

import threading
import time

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterRouter,
    NotFound,
    Quarantined,
    WriteQuorumFailed,
)
from repro.cluster.repair import repair_until_converged, run_anti_entropy
from repro.cluster.shard import ClusterShard, ShardDown
from repro.cluster.store import PUT_STAGES
from repro.resilience.faults import FaultInjector


def make_router(tmp_path, **overrides):
    settings = dict(
        shards=3,
        replication=2,
        vnodes=16,
        hedge=False,
        deadline_s=5.0,
        store_root=str(tmp_path / "stores"),
        store_fsync=False,
        failure_threshold=2,
        cooldown_s=0.05,
    )
    settings.update(overrides)
    return ClusterRouter(ClusterConfig(**settings))


@pytest.fixture
def router(tmp_path):
    with make_router(tmp_path) as instance:
        yield instance


def owners_of(router, key):
    with router._lock:
        return router.ring.replicas(key, router.config.replication)


def drain(router, shard_id):
    with router._lock:
        for _ in range(router.config.failure_threshold + 1):
            router.health[shard_id].record(False)
        router._sync_ring_locked(shard_id)
    assert shard_id not in router.ring


def readmit(router, shard_id):
    with router._lock:
        router.health[shard_id].reset()
        router._sync_ring_locked(shard_id)


class TestQuorumPut:
    def test_put_acks_full_replica_set(self, router):
        response = router.put(b"payload-bytes", "k0")
        assert response.ok and response.kind == "put"
        assert response.replicas_acked == 2
        assert response.version >= 1
        # Every owner holds the bytes durably, not just one.
        for shard_id in owners_of(router, "k0"):
            assert router.shard(shard_id).store.get("k0") == b"payload-bytes"

    def test_versions_are_a_single_total_order(self, router):
        first = router.put(b"a", "k")
        second = router.put(b"b", "other")
        third = router.put(b"c", "k")
        assert first.version < second.version < third.version
        assert router.get("k").value == b"c"

    def test_below_quorum_is_typed_and_not_acknowledged(self, router):
        owners = owners_of(router, "kq")
        router.shard(owners[1]).kill()
        response = router.put(b"doomed", "kq")
        assert not response.ok
        assert isinstance(response.error, WriteQuorumFailed)
        assert (response.error.acked, response.error.quorum) == (1, 2)
        assert response.replicas_acked == 1
        assert router.counters["store_put_quorum_failures"] == 1

    def test_quorum_shrinks_with_the_candidate_set(self, router):
        # With a dead owner *drained from the ring*, the replica set for
        # its keys falls to the survivors and writes keep flowing.
        owners = owners_of(router, "kd")
        router.shard(owners[0]).kill()
        drain(router, owners[0])
        response = router.put(b"still-durable", "kd")
        assert response.ok
        assert response.replicas_acked >= 1


class TestVerifiedGet:
    def test_get_round_trip_bit_exact(self, router):
        payload = bytes(range(256)) * 8
        router.put(payload, "kr")
        response = router.get("kr")
        assert response.ok and response.value == payload

    def test_get_fails_over_past_a_dead_primary(self, router):
        router.put(b"replicated", "kf")
        owners = owners_of(router, "kf")
        router.shard(owners[0]).kill()
        response = router.get("kf")
        assert response.ok and response.value == b"replicated"
        assert response.shard == owners[1]
        assert response.failovers == 1

    def test_get_fails_over_past_a_corrupt_copy(self, router):
        router.put(b"replicated", "kc")
        owners = owners_of(router, "kc")
        primary = router.shard(owners[0]).store
        FaultInjector(seed=11).file_bit_flip(
            primary._segment_path(primary.digest()["kc"][1])
        )
        response = router.get("kc")
        assert response.ok and response.value == b"replicated"
        assert response.shard == owners[1]
        # The damaged copy surfaced as typed quarantine, never as bytes.
        with pytest.raises(Quarantined):
            primary.get("kc")

    def test_miss_on_every_replica_is_typed_not_found(self, router):
        response = router.get("never-written")
        assert not response.ok
        assert isinstance(response.error, NotFound)
        assert router.counters["store_get_misses"] == 1

    def test_store_errors_do_not_poison_shard_health(self, router):
        for _ in range(5 * router.config.failure_threshold):
            router.get("never-written")
        # Misses are correct answers: nobody gets drained for them.
        assert router.counters["shard_drained"] == 0
        assert len(router.ring.shard_ids) == router.config.shards


class TestAntiEntropy:
    def test_heals_a_quarantined_copy(self, router):
        payload = b"precious" * 64
        router.put(payload, "kh")
        owners = owners_of(router, "kh")
        victim = router.shard(owners[0]).store
        FaultInjector(seed=12).file_bit_flip(
            victim._segment_path(victim.digest()["kh"][1])
        )
        victim.scrub(None)  # latent damage found -> quarantined
        assert "kh" not in victim.digest()

        report = run_anti_entropy(router)
        assert report.under_replicated >= 1
        assert report.copies_made >= 1
        assert victim.get("kh") == payload  # re-replicated, verified

    def test_heals_a_revived_shard_that_missed_writes(self, router):
        owners = owners_of(router, "km")
        late = owners[1]
        router.shard(late).kill()
        drain(router, late)
        acked = router.put(b"written-while-down", "km")
        assert acked.ok
        router.shard(late).revive()
        readmit(router, late)

        report = repair_until_converged(router)
        assert report.converged
        assert (
            router.shard(late).store.get("km") == b"written-while-down"
        )

    def test_winner_election_prefers_highest_version(self, router):
        owners = owners_of(router, "kv")
        # Manufacture divergence: one owner holds a stale version.
        router.shard(owners[0]).put("kv", b"stale", 3)
        router.shard(owners[1]).put("kv", b"fresh", 7)
        report = run_anti_entropy(router)
        assert report.conflicts == 1
        for shard_id in owners:
            assert router.shard(shard_id).store.get("kv") == b"fresh"
            assert router.shard(shard_id).store.digest()["kv"][0] == 7

    def test_falls_back_to_next_clean_source(self, router):
        payload = b"two-sources" * 32
        owners = owners_of(router, "ks")
        stray = next(
            sid for sid in router.shard_ids if sid not in owners
        )
        # Two holders of the winning copy, neither of them owner 1 (who
        # therefore needs a repair copy).  Silently rot the holder that
        # sorts first: repair elects it as the source, the verified read
        # rejects it (quarantine), and the next holder must be tried.
        router.shard(owners[0]).put("ks", payload, 5)
        router.shard(stray).put("ks", payload, 5)
        damaged = router.shard(min(owners[0], stray)).store
        FaultInjector(seed=13).file_bit_flip(
            damaged._segment_path(damaged.digest()["ks"][1])
        )
        report = repair_until_converged(router)
        assert report.converged
        assert not report.unrepairable
        assert report.copies_made >= 1
        for shard_id in owners:
            assert router.shard(shard_id).store.get("ks") == payload

    def test_unrepairable_key_is_reported_not_invented(self, router):
        owners = owners_of(router, "ku")
        # The only copy anywhere, silently rotted on disk.
        router.shard(owners[0]).put("ku", b"last-copy", 1)
        only = router.shard(owners[0]).store
        FaultInjector(seed=14).file_truncate(
            only._segment_path(only.digest()["ku"][1]), at=2
        )
        one = run_anti_entropy(router)
        assert one.unrepairable == ["ku"]
        assert one.copies_made == 0
        # The loss is now *visible* (quarantined), and the next sweep
        # converges rather than retrying a key nobody can serve.
        total = repair_until_converged(router)
        assert total.converged

    def test_clean_cluster_converges_in_one_pass(self, router):
        for index in range(8):
            assert router.put(bytes([index]) * 100, f"k{index}").ok
        report = repair_until_converged(router)
        assert report.converged and report.passes == 1
        assert report.copies_made == 0 and not report.unrepairable
        assert report.keys_scanned == 8

    def test_readmission_schedules_background_repair(self, router):
        owners = owners_of(router, "kb")
        late = owners[1]
        router.shard(late).kill()
        drain(router, late)
        assert router.put(b"missed", "kb").ok
        router.shard(late).revive()
        readmit(router, late)  # _sync_ring_locked -> repair scheduled
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if router.counters["repair_passes"] >= 1:
                break
            time.sleep(0.01)
        assert router.counters["repair_passes"] >= 1
        assert router.shard(late).store.get("kb") == b"missed"


class TestArmedKill:
    def test_armed_kill_fires_at_the_exact_stage(self, tmp_path):
        shard = ClusterShard("s", store_dir=str(tmp_path / "s"))
        assert shard.put("acked", b"safe", 1).ok
        shard.arm_kill("journal_partial")
        response = shard.put("doomed", b"lost", 2)
        assert not response.ok and isinstance(response.error, ShardDown)
        assert not shard.alive and shard.kills == 1
        shard.revive()
        # The acked write survived the torn-write crash; the one the
        # kill interrupted was never acknowledged and is gone.
        assert shard.store.last_recovery.torn_tail
        assert shard.get("acked").value == b"safe"
        assert isinstance(shard.get("doomed").error, NotFound)

    def test_arm_kill_rejects_unknown_stage(self, tmp_path):
        shard = ClusterShard("s", store_dir=str(tmp_path / "s"))
        with pytest.raises(ValueError):
            shard.arm_kill("not-a-stage")
        assert "journal_partial" in PUT_STAGES

    def test_revive_clears_a_stale_armed_kill(self, tmp_path):
        shard = ClusterShard("s", store_dir=str(tmp_path / "s"))
        shard.arm_kill("journal_synced")
        shard.kill()  # plain kill first; the armed stage must not leak
        shard.revive()
        assert shard.put("k", b"fine", 1).ok
        assert shard.alive


class TestReviveOrdering:
    """Satellite: probe re-admission must wait for recovery."""

    def _blocked_shard(self, tmp_path):
        shard = ClusterShard("s", store_dir=str(tmp_path / "s"))
        shard.put("k", b"durable", 1)
        shard.kill()
        gate = threading.Event()
        entered = threading.Event()

        def hook():
            entered.set()
            assert gate.wait(timeout=30.0)

        shard.recovery_hook = hook
        thread = threading.Thread(target=shard.revive)
        thread.start()
        assert entered.wait(timeout=30.0)
        return shard, gate, thread

    def test_recovering_shard_refuses_requests_like_a_dead_one(
        self, tmp_path
    ):
        shard, gate, thread = self._blocked_shard(tmp_path)
        try:
            assert shard._alive and not shard.alive  # up, not serving
            probe = shard.probe(deadline_s=0.5)
            assert not probe.ok
            assert isinstance(probe.error, ShardDown)
            assert "recovering" in str(probe.error)
            read = shard.get("k")
            assert not read.ok and isinstance(read.error, ShardDown)
        finally:
            gate.set()
            thread.join(timeout=30.0)
        assert shard.alive
        assert shard.probe(deadline_s=2.0).ok
        assert shard.get("k").value == b"durable"

    def test_router_cannot_readmit_a_recovering_shard(self, tmp_path):
        from repro.telemetry.propagate import mint_trace

        with make_router(tmp_path, shards=2) as router:
            shard_id = router.shard_ids[0]
            shard = router.shard(shard_id)
            shard.kill()
            drain(router, shard_id)

            gate = threading.Event()
            entered = threading.Event()

            def hook():
                entered.set()
                assert gate.wait(timeout=30.0)

            shard.recovery_hook = hook
            thread = threading.Thread(target=shard.revive)
            thread.start()
            try:
                assert entered.wait(timeout=30.0)
                # A probe against the recovering shard must fail and
                # leave it drained -- this is the regression: before the
                # ordering fix, revive flipped `alive` first and a probe
                # racing the journal replay re-admitted a shard whose
                # index was still being rebuilt.
                ctx = mint_trace("cluster-probe", budget_s=0.5)
                router._run_probe(shard_id, 0.5, ctx)
                assert shard_id not in router.ring
            finally:
                gate.set()
                thread.join(timeout=30.0)
            ctx = mint_trace("cluster-probe", budget_s=2.0)
            router._run_probe(shard_id, 2.0, ctx)
            assert shard_id in router.ring
