"""Tests for channels, compressors, and the two parallel trainers."""

import numpy as np
import pytest

from repro.distributed import (
    Channel,
    CodecCompressor,
    DataParallelTrainer,
    IdentityCompressor,
    PipelineParallelTrainer,
    ResidualCompressor,
    RTNCompressor,
)
from repro.models.synthetic_weights import gradient_like
from repro.nn.data import CorpusConfig, SyntheticCorpus
from repro.nn.optim import OneBitAdam
from repro.nn.transformer import GPT, GPTConfig

TINY = GPTConfig(vocab_size=32, max_seq_len=32, dim=16, num_heads=2, num_layers=2)


@pytest.fixture()
def corpus():
    return SyntheticCorpus(CorpusConfig(vocab_size=32, seq_len=20, seed=9))


class TestChannel:
    def test_identity_passthrough(self):
        channel = Channel(IdentityCompressor())
        tensor = np.ones((4, 4))
        out = channel.send(tensor, step=0)
        assert np.array_equal(out, tensor)
        assert channel.average_bits_per_value == 16.0

    def test_uncompressed_channel_default(self):
        channel = Channel()
        channel.send(np.zeros((2, 2)))
        assert channel.compression_ratio == pytest.approx(1.0)

    def test_rtn_compressor_accounting(self):
        channel = Channel(RTNCompressor(4, group_size=64))
        grad = gradient_like(32, 64, seed=0)
        out = channel.send(grad, step=0)
        assert out.shape == grad.shape
        assert 4.0 < channel.average_bits_per_value < 4.6
        assert channel.compression_ratio > 3.0

    def test_traffic_totals_accumulate(self):
        channel = Channel(RTNCompressor(8))
        for step in range(3):
            channel.send(np.ones((8, 8)), step=step)
        assert len(channel.records) == 3
        assert channel.total_raw_bytes == 3 * 64 * 2

    def test_codec_compressor_hits_budget(self):
        channel = Channel(CodecCompressor(bits_per_value=3.0))
        grad = gradient_like(64, 64, seed=1).astype(np.float64)
        out = channel.send(grad, step=0)
        assert out.shape == grad.shape
        assert channel.average_bits_per_value <= 3.1

    def test_codec_compressor_caches_qp(self):
        compressor = CodecCompressor(bits_per_value=3.0, refresh_every=100)
        grad = gradient_like(64, 64, seed=2).astype(np.float64)
        compressor.compress(grad, 0)
        assert len(compressor._qp_cache) == 1
        compressor.compress(grad * 1.01, 1)  # same shape: cached path
        assert len(compressor._qp_cache) == 1

    def test_residual_compressor_improves_on_base(self):
        from repro.tensor.residual import ResidualGradientCompressor

        grad = gradient_like(48, 48, seed=3).astype(np.float64)
        inner = ResidualGradientCompressor()
        compressor = ResidualCompressor(inner)
        restored, bits = compressor.compress(grad, step=0)
        base_only = inner.codec.decode(inner.codec.encode(grad, bits_per_value=3.5))
        assert np.mean((restored - grad) ** 2) < np.mean((base_only - grad) ** 2)
        assert bits > 3.5  # residual pass costs extra bits


class TestPipelineTrainer:
    def test_requires_two_stages(self, corpus):
        with pytest.raises(ValueError):
            PipelineParallelTrainer(GPT(TINY), num_stages=1)

    def test_stage_count_cannot_exceed_blocks(self, corpus):
        with pytest.raises(ValueError):
            PipelineParallelTrainer(GPT(TINY), num_stages=5)

    def test_matches_single_device_training_when_uncompressed(self, corpus):
        tokens, targets = next(corpus.batches(4, 1, seed=1))
        single = GPT(TINY, seed=0)
        loss_single = float(single.loss(tokens, targets).data)
        piped = PipelineParallelTrainer(GPT(TINY, seed=0), num_stages=2, micro_batches=1)
        loss_piped = piped.train_step(tokens, targets)
        assert loss_piped == pytest.approx(loss_single, rel=1e-9)

    def test_gradients_match_single_device(self, corpus):
        tokens, targets = next(corpus.batches(4, 1, seed=2))
        single = GPT(TINY, seed=0)
        loss = single.loss(tokens, targets)
        single.zero_grad()
        loss.backward()
        reference = {n: p.grad.copy() for n, p in single.named_parameters()}

        piped_model = GPT(TINY, seed=0)
        trainer = PipelineParallelTrainer(piped_model, num_stages=2, micro_batches=1)
        trainer.optimizer.lr = 0.0  # keep weights identical
        trainer.train_step(tokens, targets)
        for name, param in piped_model.named_parameters():
            assert np.allclose(param.grad, reference[name], atol=1e-9), name

    def test_microbatching_accumulates(self, corpus):
        tokens, targets = next(corpus.batches(8, 1, seed=3))
        trainer = PipelineParallelTrainer(GPT(TINY, seed=0), num_stages=2, micro_batches=4)
        loss = trainer.train_step(tokens, targets)
        assert np.isfinite(loss)
        # 3 micro-batch boundary transfers... 4 micro-batches x 1 boundary.
        assert len(trainer.activation_channel.records) == 4

    def test_compressed_activations_still_learn(self, corpus):
        trainer = PipelineParallelTrainer(
            GPT(TINY, seed=0),
            num_stages=2,
            activation_channel=Channel(RTNCompressor(6)),
            gradient_channel=Channel(RTNCompressor(8)),
        )
        history = trainer.train(corpus.batches(8, 25, seed=4), steps=25)
        assert history[-1].loss < history[0].loss
        assert trainer.activation_channel.average_bits_per_value < 7

    def test_traffic_recorded_per_step(self, corpus):
        trainer = PipelineParallelTrainer(GPT(TINY, seed=0), num_stages=2)
        tokens, targets = next(corpus.batches(4, 1, seed=5))
        trainer.train_step(tokens, targets)
        assert trainer.history[0].activation_bytes > 0
        assert trainer.history[0].gradient_bytes > 0


class TestDataParallelTrainer:
    def test_single_worker_matches_plain_training(self, corpus):
        tokens, targets = next(corpus.batches(4, 1, seed=6))
        plain = GPT(TINY, seed=0)
        from repro.nn.optim import Adam

        opt = Adam(plain.parameters(), lr=3e-3)
        loss = plain.loss(tokens, targets)
        opt.zero_grad()
        loss.backward()
        opt.step()

        dp_model = GPT(TINY, seed=0)
        trainer = DataParallelTrainer(dp_model, num_workers=1, lr=3e-3)
        trainer.train_step(tokens, targets)
        for (n1, p1), (n2, p2) in zip(
            plain.named_parameters(), dp_model.named_parameters()
        ):
            assert np.allclose(p1.data, p2.data, atol=1e-10), n1

    def test_multi_worker_reduces_loss(self, corpus):
        trainer = DataParallelTrainer(GPT(TINY, seed=0), num_workers=2, lr=3e-3)
        history = trainer.train(corpus.batches(8, 25, seed=7), steps=25)
        assert history[-1].loss < history[0].loss

    def test_gradient_traffic_accounted(self, corpus):
        trainer = DataParallelTrainer(
            GPT(TINY, seed=0),
            num_workers=2,
            gradient_channel=Channel(RTNCompressor(4)),
        )
        tokens, targets = next(corpus.batches(8, 1, seed=8))
        trainer.train_step(tokens, targets)
        # One bucket per worker per step.
        assert len(trainer.gradient_channel.records) == 2
        assert trainer.gradient_channel.average_bits_per_value < 5

    def test_onebit_optimizer_integration(self, corpus):
        model = GPT(TINY, seed=0)
        opt = OneBitAdam(model.parameters(), num_workers=2, lr=3e-3, warmup_steps=3)
        trainer = DataParallelTrainer(model, num_workers=2, optimizer=opt)
        history = trainer.train(corpus.batches(8, 10, seed=9), steps=10)
        assert history[-1].loss < history[0].loss
        bits = [r.bits_per_value for r in trainer.gradient_channel.records]
        assert bits[:3] == [16.0] * 3
        assert all(b == 1.0 for b in bits[3:])

    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            DataParallelTrainer(GPT(TINY), num_workers=0)

    def test_bucket_fuse_unfuse_roundtrip(self, corpus):
        trainer = DataParallelTrainer(GPT(TINY, seed=0), num_workers=1)
        grads = [np.random.default_rng(i).normal(size=p.data.shape) for i, p in enumerate(trainer.params)]
        bucket = trainer._fuse(grads)
        restored = trainer._unfuse(bucket, grads)
        for original, back, compressible in zip(grads, restored, trainer._compressible):
            if compressible:
                assert np.allclose(original, back)
