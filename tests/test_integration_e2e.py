"""End-to-end integration: the full LLM.265 story in one test module.

Train -> compress weights -> evaluate -> ship checkpoint -> reload ->
generate with a compressed KV cache.  Exercises the seams between the
codec, the NN substrate, the eval harness, and the storage layer.
"""

import numpy as np
import pytest

from repro.evals import COMMONSENSE_SUITE, build_suite
from repro.evals.harness import average_accuracy, evaluate_suite
from repro.models.zoo import load_model
from repro.nn.generate import generate
from repro.quant.kvcache import rtn_kv_hook
from repro.tensor.checkpoint import load_checkpoint, save_checkpoint
from repro.tensor.codec import TensorCodec


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    """Model + corpus + tasks + a compressed checkpoint on disk."""
    model, corpus = load_model("tiny-sim")
    tasks = build_suite(corpus, COMMONSENSE_SUITE[:3], num_items=20)
    path = str(tmp_path_factory.mktemp("ckpt") / "tiny.lv265")
    stats = save_checkpoint(model.state_dict(), path, bits_per_value=3.5)
    return model, corpus, tasks, path, stats


class TestEndToEnd:
    def test_compressed_weights_keep_task_accuracy(self, stack):
        model, corpus, tasks, _, _ = stack
        baseline = average_accuracy(evaluate_suite(model, tasks))

        lossy, _ = load_model("tiny-sim")
        codec = TensorCodec(tile=64)
        names = sorted(lossy.weight_matrices())
        restored = {
            n: codec.decode(codec.encode(lossy.weight_matrices()[n], bits_per_value=3.5))
            for n in names
        }
        lossy.apply_weight_transform(lambda n, w: restored[n])
        compressed_acc = average_accuracy(evaluate_suite(lossy, tasks))
        assert compressed_acc >= baseline - 0.15

    def test_checkpoint_reload_matches_live_compression(self, stack):
        model, corpus, tasks, path, stats = stack
        assert stats.compression_ratio > 1.0

        revived, _ = load_model("tiny-sim")
        revived.load_state_dict(load_checkpoint(path))
        ppl_live = model.perplexity(corpus.sample(8, seed=55))
        ppl_revived = revived.perplexity(corpus.sample(8, seed=55))
        assert ppl_revived < ppl_live * 1.8  # lossy but functional

    def test_reloaded_model_generates_with_compressed_cache(self, stack):
        _, corpus, _, path, _ = stack
        revived, _ = load_model("tiny-sim")
        revived.load_state_dict(load_checkpoint(path))
        prompt = corpus.sample(1, seq_len=6, seed=77)[0]
        tokens, cache = generate(
            revived, prompt, max_new_tokens=8,
            kv_hook=rtn_kv_hook(6), compress_every=4,
        )
        assert len(tokens) == 14
        assert tokens.max() < revived.config.vocab_size
        assert cache.seq_len == 14

    def test_whole_pipeline_is_deterministic(self, stack):
        _, corpus, _, path, _ = stack
        a, _ = load_model("tiny-sim")
        b, _ = load_model("tiny-sim")
        a.load_state_dict(load_checkpoint(path))
        b.load_state_dict(load_checkpoint(path))
        prompt = corpus.sample(1, seq_len=6, seed=88)[0]
        out_a, _ = generate(a, prompt, 6)
        out_b, _ = generate(b, prompt, 6)
        assert np.array_equal(out_a, out_b)
