"""Tests for layers, the GPT model, optimizers, and the synthetic corpus."""

import numpy as np
import pytest

from repro.nn.autograd import Parameter, Tensor
from repro.nn.data import CorpusConfig, SyntheticCorpus
from repro.nn.layers import (
    CausalSelfAttention,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    TransformerBlock,
)
from repro.nn.optim import LAMB, SGD, Adam, OneBitAdam, OneBitLAMB
from repro.nn.transformer import GPT, GPTConfig

TINY = GPTConfig(vocab_size=32, max_seq_len=32, dim=16, num_heads=2, num_layers=2)


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(CorpusConfig(vocab_size=32, seq_len=24, seed=7))


class TestLayers:
    def test_linear_shapes(self):
        rng = np.random.default_rng(0)
        layer = Linear(8, 12, rng)
        out = layer(Tensor(rng.normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 12)

    def test_layernorm_normalises(self):
        rng = np.random.default_rng(1)
        out = LayerNorm(16)(Tensor(rng.normal(3.0, 5.0, (4, 16))))
        assert np.allclose(out.data.mean(axis=-1), 0, atol=1e-6)
        assert np.allclose(out.data.std(axis=-1), 1, atol=1e-2)

    def test_embedding_lookup(self):
        rng = np.random.default_rng(2)
        emb = Embedding(10, 4, rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)
        assert np.array_equal(out.data[0, 0], emb.weight.data[1])

    def test_attention_is_causal(self):
        rng = np.random.default_rng(3)
        attn = CausalSelfAttention(16, 2, rng)
        x = rng.normal(size=(1, 6, 16))
        base = attn(Tensor(x)).data
        perturbed = x.copy()
        perturbed[0, 4] += 10.0  # changing a later token...
        out = attn(Tensor(perturbed)).data
        assert np.allclose(out[0, :4], base[0, :4])  # ...leaves earlier alone
        assert not np.allclose(out[0, 4:], base[0, 4:])

    def test_attention_kv_hook_applied(self):
        rng = np.random.default_rng(4)
        attn = CausalSelfAttention(16, 2, rng, layer_index=5)
        seen = []

        def hook(k, v, layer_index):
            seen.append(layer_index)
            return np.zeros_like(k), np.zeros_like(v)

        attn.kv_hook = hook
        out = attn(Tensor(rng.normal(size=(1, 4, 16))))
        assert seen == [5]
        # With zeroed values, attention output is the projection bias only.
        assert np.allclose(out.data, out.data[0, 0])

    def test_dim_heads_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CausalSelfAttention(10, 3, np.random.default_rng(0))

    def test_block_changes_input(self):
        rng = np.random.default_rng(5)
        block = TransformerBlock(16, 2, rng)
        x = rng.normal(size=(1, 4, 16))
        assert not np.allclose(block(Tensor(x)).data, x)


class TestModule:
    def test_named_parameters_deterministic(self):
        model = GPT(TINY, seed=0)
        names = [n for n, _ in model.named_parameters()]
        assert names == sorted(names) or len(names) == len(set(names))
        assert len(names) == len(set(names))

    def test_state_dict_roundtrip(self):
        a = GPT(TINY, seed=0)
        b = GPT(TINY, seed=1)
        b.load_state_dict(a.state_dict())
        tokens = np.arange(8)[None, :]
        assert np.allclose(a.forward(tokens).data, b.forward(tokens).data)

    def test_state_dict_mismatch_rejected(self):
        model = GPT(TINY, seed=0)
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_num_parameters_positive(self):
        assert GPT(TINY).num_parameters() > 1000


class TestGPT:
    def test_forward_shape(self):
        model = GPT(TINY)
        logits = model.forward(np.zeros((2, 10), dtype=np.int64))
        assert logits.shape == (2, 10, TINY.vocab_size)

    def test_too_long_sequence_rejected(self):
        model = GPT(TINY)
        with pytest.raises(ValueError):
            model.forward(np.zeros((1, 100), dtype=np.int64))

    def test_loss_decreases_with_training(self, corpus):
        model = GPT(TINY, seed=0)
        opt = Adam(model.parameters(), lr=3e-3)
        losses = []
        for x, y in corpus.batches(8, 30, seq_len=24, seed=1):
            loss = model.loss(x, y)
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert np.mean(losses[-5:]) < losses[0] - 0.3

    def test_perplexity_better_than_uniform_after_training(self, corpus):
        model = GPT(TINY, seed=0)
        opt = Adam(model.parameters(), lr=3e-3)
        for x, y in corpus.batches(8, 40, seq_len=24, seed=2):
            loss = model.loss(x, y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        ppl = model.perplexity(corpus.sample(16, seq_len=24, seed=99))
        assert ppl < TINY.vocab_size * 0.8

    def test_sequence_logprob_is_negative(self):
        model = GPT(TINY)
        assert model.sequence_logprob(np.arange(10) % 32) < 0

    def test_weight_matrices_excludes_embeddings(self):
        model = GPT(TINY)
        for name in model.weight_matrices():
            assert "emb" not in name

    def test_apply_weight_transform(self):
        model = GPT(TINY, seed=0)
        model.apply_weight_transform(lambda name, w: np.zeros_like(w))
        assert all(np.all(w == 0) for w in model.weight_matrices().values())

    def test_kv_hook_changes_logits(self):
        model = GPT(TINY, seed=0)
        tokens = np.arange(12)[None, :] % 32
        base = model.forward(tokens).data
        model.set_kv_hook(lambda k, v, i: (k * 0.5, v * 0.5))
        hooked = model.forward(tokens).data
        model.set_kv_hook(None)
        assert not np.allclose(base, hooked)
        assert np.allclose(model.forward(tokens).data, base)


class TestOptimizers:
    def _quadratic_losses(self, optimizer_factory, steps=60):
        param = Parameter(np.array([5.0, -3.0]))
        opt = optimizer_factory([param])
        losses = []
        for _ in range(steps):
            loss = (param * param).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        return losses

    def test_sgd_converges(self):
        losses = self._quadratic_losses(lambda p: SGD(p, lr=0.1))
        assert losses[-1] < 1e-3

    def test_sgd_momentum_converges(self):
        losses = self._quadratic_losses(
            lambda p: SGD(p, lr=0.05, momentum=0.9), steps=150
        )
        assert losses[-1] < 1e-2

    def test_adam_converges(self):
        losses = self._quadratic_losses(lambda p: Adam(p, lr=0.3), steps=150)
        assert losses[-1] < 1e-2

    def test_lamb_converges(self):
        losses = self._quadratic_losses(lambda p: LAMB(p, lr=0.1, weight_decay=0.0), steps=120)
        assert losses[-1] < losses[0] / 100

    def test_adam_skips_missing_grads(self):
        param = Parameter(np.ones(2))
        Adam([param]).step()  # no grad accumulated: must be a no-op
        assert np.allclose(param.data, 1.0)


class TestOneBitOptimizers:
    def _train(self, optimizer, params, steps):
        for _ in range(steps):
            grads = []
            for _ in range(optimizer.num_workers):
                noise = np.random.default_rng(0).normal(0, 0.01, params[0].data.shape)
                grads.append([2 * params[0].data + noise])
            optimizer.step(grads)

    def test_onebit_adam_warmup_then_compress(self):
        param = Parameter(np.array([4.0, -4.0]))
        opt = OneBitAdam([param], num_workers=2, lr=0.2, warmup_steps=5)
        self._train(opt, [param], 30)
        assert np.abs(param.data).max() < 1.0
        assert opt.bits_log[:5] == [16.0] * 5
        assert all(b == 1.0 for b in opt.bits_log[5:])

    def test_onebit_adam_average_bits_matches_paper_formula(self):
        param = Parameter(np.zeros(4))
        opt = OneBitAdam([param], num_workers=1, warmup_steps=15)
        for _ in range(100):
            opt.step([[np.zeros(4)]])
        assert opt.average_bits == pytest.approx(0.15 * 16 + 0.85 * 1)

    def test_onebit_lamb_converges(self):
        param = Parameter(np.array([3.0, -2.0]))
        opt = OneBitLAMB([param], num_workers=2, lr=0.1, warmup_steps=5, weight_decay=0.0)
        self._train(opt, [param], 60)
        assert np.abs(param.data).max() < 1.5

    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            OneBitAdam([Parameter(np.zeros(2))], num_workers=0)
        opt = OneBitAdam([Parameter(np.zeros(2))], num_workers=2)
        with pytest.raises(ValueError):
            opt.step([[np.zeros(2)]])


class TestCorpus:
    def test_sampling_deterministic(self, corpus):
        a = corpus.sample(4, seed=1)
        b = corpus.sample(4, seed=1)
        assert np.array_equal(a, b)

    def test_tokens_in_vocab(self, corpus):
        tokens = corpus.sample(8, seed=2)
        assert tokens.min() >= 0 and tokens.max() < 32

    def test_batches_are_shifted(self, corpus):
        x, y = next(corpus.batches(2, 1, seed=3))
        assert x.shape == y.shape
        full = corpus.sample(2, seed=4)
        assert np.array_equal(full[:, :-1].shape, x.shape)

    def test_oracle_logprob_negative_and_finite(self, corpus):
        tokens = corpus.sample(1, seed=5)[0]
        lp = corpus.oracle_logprob(tokens)
        assert np.isfinite(lp) and lp < 0

    def test_oracle_prefers_real_continuations(self, corpus):
        rng = np.random.default_rng(6)
        wins = 0
        for i in range(20):
            seq = corpus.sample(1, seq_len=32, seed=100 + i)[0]
            context, real = seq[:24], seq[24:]
            fake = rng.integers(0, 32, size=8)
            if corpus.oracle_continuation_logprob(
                context, real
            ) > corpus.oracle_continuation_logprob(context, fake):
                wins += 1
        assert wins >= 15

    def test_entropy_bound_below_uniform(self, corpus):
        assert corpus.token_entropy_bound < np.log(32)
