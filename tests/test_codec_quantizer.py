"""Tests for QP-driven quantization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.quantizer import dequantize, qstep, quantize, rd_lambda


class TestQStep:
    def test_doubles_every_six_qp(self):
        for qp in range(0, 46):
            assert qstep(qp + 6) == pytest.approx(2.0 * qstep(qp))

    def test_reference_point(self):
        assert qstep(4) == pytest.approx(1.0)

    def test_monotone(self):
        steps = [qstep(qp) for qp in range(52)]
        assert all(a < b for a, b in zip(steps, steps[1:]))


class TestQuantize:
    def test_roundtrip_error_bounded_by_half_step(self):
        rng = np.random.default_rng(0)
        coeffs = rng.normal(0, 20, (8, 8))
        for qp in (4, 16, 28):
            levels = quantize(coeffs, qp)
            rec = dequantize(levels, qp)
            assert np.max(np.abs(rec - coeffs)) <= qstep(qp) / 2 + 1e-9

    def test_higher_qp_means_fewer_levels(self):
        rng = np.random.default_rng(1)
        coeffs = rng.normal(0, 10, (16, 16))
        nnz = [np.count_nonzero(quantize(coeffs, qp)) for qp in (4, 20, 36)]
        assert nnz[0] >= nnz[1] >= nnz[2]

    def test_deadzone_zeroes_more(self):
        rng = np.random.default_rng(2)
        coeffs = rng.normal(0, 2, (8, 8))
        plain = np.count_nonzero(quantize(coeffs, 16, deadzone=0.0))
        dead = np.count_nonzero(quantize(coeffs, 16, deadzone=0.4))
        assert dead <= plain

    def test_deadzone_preserves_sign(self):
        coeffs = np.array([[-5.0, 5.0], [-0.1, 0.1]])
        levels = quantize(coeffs, 4, deadzone=0.2)
        assert levels[0, 0] < 0 < levels[0, 1]

    def test_levels_are_integers(self):
        levels = quantize(np.array([[1.7, -2.3]]), 10)
        assert levels.dtype == np.int64

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=0, max_value=51),
        st.floats(min_value=-1000, max_value=1000, allow_nan=False),
    )
    def test_property_error_bound(self, qp, value):
        coeffs = np.array([[value]])
        rec = dequantize(quantize(coeffs, qp), qp)
        assert abs(rec[0, 0] - value) <= qstep(qp) / 2 + 1e-6


class TestLambda:
    def test_lambda_grows_with_qp(self):
        values = [rd_lambda(qp) for qp in range(0, 52, 4)]
        assert all(a < b for a, b in zip(values, values[1:]))
