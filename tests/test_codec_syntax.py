"""Unit tests for the bitstream syntax layer (encoder/decoder pairs)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.entropy.arithmetic import BinaryDecoder, BinaryEncoder
from repro.codec.profiles import H265_PROFILE
from repro.codec.syntax import (
    CodecContexts,
    decode_coeff_block,
    decode_intra_mode,
    decode_mv,
    encode_coeff_block,
    encode_intra_mode,
    encode_mv,
    estimate_coeff_bits,
    size_class,
)


class TestSizeClass:
    def test_known_sizes(self):
        assert size_class(4) == 0
        assert size_class(8) == 1
        assert size_class(32) == 3

    def test_unsupported_rejected(self):
        with pytest.raises(ValueError):
            size_class(2)
        with pytest.raises(ValueError):
            size_class(128)


def _roundtrip_blocks(blocks):
    enc = BinaryEncoder()
    ctx = CodecContexts()
    for block in blocks:
        encode_coeff_block(enc, ctx, block)
    dec = BinaryDecoder(enc.finish())
    ctx2 = CodecContexts()
    return [decode_coeff_block(dec, ctx2, b.shape[0]) for b in blocks]


class TestCoeffBlocks:
    def test_zero_block_is_one_bit(self):
        enc = BinaryEncoder()
        ctx = CodecContexts()
        for _ in range(100):
            encode_coeff_block(enc, ctx, np.zeros((8, 8), dtype=np.int64))
        assert len(enc.finish()) < 20  # adaptive CBF approaches 0 bits

    def test_roundtrip_random_blocks(self):
        rng = np.random.default_rng(0)
        blocks = [
            rng.integers(-30, 30, (n, n)).astype(np.int64) for n in (4, 8, 16, 32)
        ]
        decoded = _roundtrip_blocks(blocks)
        for original, back in zip(blocks, decoded):
            assert np.array_equal(original, back)

    def test_roundtrip_sparse_blocks(self):
        rng = np.random.default_rng(1)
        blocks = []
        for _ in range(20):
            block = np.zeros((8, 8), dtype=np.int64)
            count = rng.integers(0, 5)
            for _ in range(count):
                block[rng.integers(8), rng.integers(8)] = rng.integers(-5, 6) or 1
            blocks.append(block)
        decoded = _roundtrip_blocks(blocks)
        for original, back in zip(blocks, decoded):
            assert np.array_equal(original, back)

    def test_large_levels_roundtrip(self):
        block = np.zeros((4, 4), dtype=np.int64)
        block[0, 0] = 100_000
        block[3, 3] = -54_321
        assert np.array_equal(_roundtrip_blocks([block])[0], block)

    def test_sparse_cheaper_than_dense(self):
        rng = np.random.default_rng(2)
        dense = rng.integers(-20, 20, (8, 8)).astype(np.int64)
        sparse = np.zeros((8, 8), dtype=np.int64)
        sparse[0, 0] = 3

        def cost(block):
            enc = BinaryEncoder()
            encode_coeff_block(enc, CodecContexts(), block)
            return len(enc.finish())

        assert cost(sparse) < cost(dense)

    def test_estimate_tracks_actual_order(self):
        rng = np.random.default_rng(3)
        dense = rng.integers(-20, 20, (8, 8)).astype(np.int64)
        sparse = np.zeros((8, 8), dtype=np.int64)
        sparse[0, 0] = 3
        assert estimate_coeff_bits(sparse) < estimate_coeff_bits(dense)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.choice([4, 8, 16]))
        density = rng.random() * 0.5
        block = np.where(
            rng.random((n, n)) < density, rng.integers(-50, 50, (n, n)), 0
        ).astype(np.int64)
        assert np.array_equal(_roundtrip_blocks([block])[0], block)


class TestIntraModeCoding:
    @pytest.mark.parametrize("neighbors", [(None, None), (5, 30), (26, 26)])
    def test_roundtrip_all_modes(self, neighbors):
        modes = list(H265_PROFILE.all_modes)
        enc = BinaryEncoder()
        ctx = CodecContexts()
        for mode in modes:
            encode_intra_mode(enc, ctx, mode, *neighbors, H265_PROFILE.all_modes)
        dec = BinaryDecoder(enc.finish())
        ctx2 = CodecContexts()
        decoded = [
            decode_intra_mode(dec, ctx2, *neighbors, H265_PROFILE.all_modes)
            for _ in modes
        ]
        assert decoded == modes

    def test_mpm_hit_is_cheap(self):
        enc = BinaryEncoder()
        ctx = CodecContexts()
        for _ in range(1000):
            encode_intra_mode(enc, ctx, 26, 26, 26, H265_PROFILE.all_modes)
        # Repeating the most probable mode costs well under 1 bit.
        assert len(enc.finish()) * 8 < 600


class TestMVCoding:
    def test_roundtrip(self):
        mvs = [(0, 0), (1, -1), (-7, 3), (15, -15), (0, 8)]
        enc = BinaryEncoder()
        ctx = CodecContexts()
        for mv in mvs:
            encode_mv(enc, ctx, mv)
        dec = BinaryDecoder(enc.finish())
        ctx2 = CodecContexts()
        assert [decode_mv(dec, ctx2) for _ in mvs] == mvs

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-64, max_value=64),
                st.integers(min_value=-64, max_value=64),
            ),
            max_size=20,
        )
    )
    def test_property_roundtrip(self, mvs):
        enc = BinaryEncoder()
        ctx = CodecContexts()
        for mv in mvs:
            encode_mv(enc, ctx, mv)
        dec = BinaryDecoder(enc.finish())
        ctx2 = CodecContexts()
        assert [decode_mv(dec, ctx2) for _ in mvs] == list(mvs)
