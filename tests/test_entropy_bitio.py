"""Unit tests for bit I/O and Exp-Golomb codes."""

import pytest
from hypothesis import given, strategies as st

from repro.codec.entropy.bitio import BitReader, BitWriter
from repro.codec.entropy.golomb import (
    read_sexp_golomb,
    read_uexp_golomb,
    write_sexp_golomb,
    write_uexp_golomb,
)


class TestBitIO:
    def test_single_bits_roundtrip(self):
        writer = BitWriter()
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1]
        for bit in bits:
            writer.write_bit(bit)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bit() for _ in range(len(bits))] == bits

    def test_write_bits_msb_first(self):
        writer = BitWriter()
        writer.write_bits(0b1011, 4)
        writer.write_bits(0b0001, 4)
        assert writer.getvalue() == bytes([0b10110001])

    def test_bit_length_tracks_written_bits(self):
        writer = BitWriter()
        writer.write_bits(0, 13)
        assert writer.bit_length == 13

    def test_unary_roundtrip(self):
        writer = BitWriter()
        for value in [0, 1, 5, 9]:
            writer.write_unary(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_unary() for _ in range(4)] == [0, 1, 5, 9]

    def test_read_past_end_raises(self):
        reader = BitReader(b"")
        with pytest.raises(EOFError):
            reader.read_bit()

    def test_zero_width_write(self):
        writer = BitWriter()
        writer.write_bits(0, 0)
        assert writer.getvalue() == b""

    def test_negative_width_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bits(1, -1)

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=200))
    def test_property_bit_roundtrip(self, bits):
        writer = BitWriter()
        for bit in bits:
            writer.write_bit(bit)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bit() for _ in range(len(bits))] == bits


class TestExpGolomb:
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_unsigned_roundtrip_small_values(self, k):
        values = list(range(0, 40)) + [100, 1000, 65535]
        writer = BitWriter()
        for value in values:
            write_uexp_golomb(writer, value, k)
        reader = BitReader(writer.getvalue())
        assert [read_uexp_golomb(reader, k) for _ in values] == values

    def test_unsigned_rejects_negative(self):
        with pytest.raises(ValueError):
            write_uexp_golomb(BitWriter(), -1)

    def test_order0_code_lengths_match_standard(self):
        # ue(v): v=0 -> 1 bit, v=1,2 -> 3 bits, v=3..6 -> 5 bits.
        for value, expected in [(0, 1), (1, 3), (2, 3), (3, 5), (6, 5), (7, 7)]:
            writer = BitWriter()
            write_uexp_golomb(writer, value)
            assert writer.bit_length == expected

    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_signed_roundtrip(self, k):
        values = [0, 1, -1, 2, -2, 17, -17, 300, -300]
        writer = BitWriter()
        for value in values:
            write_sexp_golomb(writer, value, k)
        reader = BitReader(writer.getvalue())
        assert [read_sexp_golomb(reader, k) for _ in values] == values

    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=50),
        st.integers(min_value=0, max_value=4),
    )
    def test_property_unsigned_roundtrip(self, values, k):
        writer = BitWriter()
        for value in values:
            write_uexp_golomb(writer, value, k)
        reader = BitReader(writer.getvalue())
        assert [read_uexp_golomb(reader, k) for _ in values] == values

    @given(
        st.lists(st.integers(min_value=-(1 << 18), max_value=1 << 18), max_size=50),
        st.integers(min_value=0, max_value=3),
    )
    def test_property_signed_roundtrip(self, values, k):
        writer = BitWriter()
        for value in values:
            write_sexp_golomb(writer, value, k)
        reader = BitReader(writer.getvalue())
        assert [read_sexp_golomb(reader, k) for _ in values] == values
