"""Tests for RTN quantization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quant.rtn import rtn_dequantize, rtn_quantize, rtn_roundtrip


class TestSymmetric:
    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0, 1, (64, 64))
        for bits in (3, 4, 8):
            restored = rtn_roundtrip(values, bits)
            qmax = 2 ** (bits - 1) - 1
            step = np.max(np.abs(values)) / qmax
            assert np.max(np.abs(restored - values)) <= step / 2 + 1e-12

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(1)
        values = rng.normal(0, 1, 4096)
        errors = [
            np.mean((rtn_roundtrip(values, bits) - values) ** 2) for bits in (2, 4, 8)
        ]
        assert errors[0] > errors[1] > errors[2]

    def test_groupwise_beats_per_tensor_with_outliers(self):
        rng = np.random.default_rng(2)
        values = rng.normal(0, 0.01, 4096)
        values[7] = 3.0  # one massive outlier ruins the global scale
        global_mse = np.mean((rtn_roundtrip(values, 4) - values) ** 2)
        group_mse = np.mean((rtn_roundtrip(values, 4, group_size=128) - values) ** 2)
        assert group_mse < global_mse / 5

    def test_zero_tensor(self):
        restored = rtn_roundtrip(np.zeros(100), 4)
        assert np.all(restored == 0)

    def test_one_bit_is_sign_times_absmax(self):
        values = np.array([-2.0, -0.5, 0.5, 2.0])
        q = rtn_quantize(values, 1)
        assert set(np.unique(q.codes)).issubset({-1, 0, 1})


class TestAsymmetric:
    def test_handles_shifted_range(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(10, 11, 1024)
        sym = np.mean((rtn_roundtrip(values, 4, symmetric=True) - values) ** 2)
        asym = np.mean((rtn_roundtrip(values, 4, symmetric=False) - values) ** 2)
        assert asym < sym / 10

    def test_codes_within_range(self):
        rng = np.random.default_rng(4)
        values = rng.normal(5, 2, 512)
        q = rtn_quantize(values, 4, symmetric=False)
        assert q.codes.min() >= 0 and q.codes.max() <= 15


class TestAccounting:
    def test_bits_per_value_includes_overhead(self):
        q = rtn_quantize(np.random.default_rng(5).normal(size=1024), 4, group_size=128)
        assert q.bits_per_value > 4.0
        assert q.bits_per_value < 4.5

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            rtn_quantize(np.ones(4), 0)
        with pytest.raises(ValueError):
            rtn_quantize(np.ones(4), 17)

    def test_nondivisible_group_padding(self):
        values = np.random.default_rng(6).normal(size=100)
        restored = rtn_roundtrip(values, 4, group_size=32)
        assert restored.shape == values.shape

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=2, max_value=8),
        st.booleans(),
        st.integers(min_value=0, max_value=1000),
    )
    def test_property_shape_preserved(self, bits, symmetric, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(7, 13))
        restored = rtn_roundtrip(values, bits, symmetric=symmetric)
        assert restored.shape == values.shape
        assert np.all(np.isfinite(restored))


class TestSyntheticGenerators:
    def test_weight_like_has_outliers(self):
        from repro.models.synthetic_weights import weight_like

        w = weight_like(256, 256, seed=0)
        std = np.std(w)
        assert np.max(np.abs(w)) > 4 * std

    def test_weight_like_channel_structure(self):
        from repro.models.synthetic_weights import weight_like

        w = weight_like(256, 256, seed=1)
        col_energy = np.std(w, axis=0)
        # Channel scales vary much more than sampling noise alone would.
        assert col_energy.max() / col_energy.min() > 1.5

    def test_activation_like_outlier_channels(self):
        from repro.models.synthetic_weights import activation_like

        a = activation_like(128, 256, seed=0)
        scales = np.std(a, axis=0)
        assert scales.max() / np.median(scales) > 5

    def test_gradient_like_range_spread_grows(self):
        from repro.models.synthetic_weights import gradient_like

        early = gradient_like(64, 256, range_spread=0.5, seed=0)
        late = gradient_like(64, 256, range_spread=2.0, seed=0)
        def spread(g):
            s = np.std(g, axis=0)
            return np.log10(s.max() / s.min())
        assert spread(late) > spread(early)

    def test_layer_stack_shape(self):
        from repro.models.synthetic_weights import layer_stack

        stack = layer_stack(4, 32, 32, seed=0)
        assert stack.shape == (4, 32, 32)
