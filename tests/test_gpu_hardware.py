"""Tests for GPU engine models and hardware cost models."""

import numpy as np
import pytest

from repro.gpu.capabilities import GPU_CODEC_SUPPORT, best_codec_for, supports
from repro.gpu.engines import (
    NVDEC,
    NVENC,
    HardwareEngine,
    communication_speedup,
    effective_link_bandwidth,
)
from repro.hardware.components import (
    BASELINE_HW_CODECS,
    CODEC_COMPONENTS,
    DEVICES,
    ENCODER_AREA_BREAKDOWN,
    INSTANCE_GBPS,
    aggregate_to_bandwidth,
    area_ratio,
    intra_only_area_fraction,
)
from repro.hardware.cluster import (
    NVENC_OPTION,
    THREE_IN_ONE_OPTION,
    UNCOMPRESSED,
    ClusterConfig,
    Workload,
    energy_efficiency_vs_model_size,
    evaluate,
    gpus_required,
    pareto_frontier,
    performance_at_budget,
    per_step_comm_bytes,
    sweep,
)
from repro.hardware.energy import (
    NCCL_PJ_PER_BIT,
    compression_energy_ratio,
    compression_vs_transfer_ratio,
    transfer_energy_joules,
)
from repro.hardware.nic import communication_system_area, communication_system_energy
from repro.hardware.threeinone import (
    SHARED_PIPELINE_FRACTION,
    THREE_IN_ONE_ENC,
    InputKind,
    overhead_versus_tensor_only,
)


class TestCapabilities:
    def test_table2_vp9_never_encodes(self):
        for generation in GPU_CODEC_SUPPORT:
            assert not supports(generation, "vp9").encode

    def test_h265_universal_8k(self):
        for generation in GPU_CODEC_SUPPORT:
            entry = supports(generation, "h265")
            assert entry.usable_for_tensors
            assert entry.max_resolution == 7680

    def test_av1_only_on_ada(self):
        assert supports("ada-lovelace", "av1").usable_for_tensors
        assert not supports("ampere", "av1").usable_for_tensors

    def test_paper_picks_h265(self):
        for generation in GPU_CODEC_SUPPORT:
            assert best_codec_for(generation) in ("h265", "av1")
        assert best_codec_for("ampere") == "h265"

    def test_describe_strings(self):
        assert supports("ampere", "h264").describe() == "4K Enc/Dec."
        assert supports("ampere", "vp9").describe() == "8K Dec"
        assert supports("ampere", "av1").describe() == "-"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            supports("pascal", "h264")


class TestEngines:
    def test_measured_throughputs(self):
        assert NVENC.throughput_mb_s == 1100.0
        assert NVDEC.throughput_mb_s == 1300.0

    def test_seconds_for(self):
        assert NVENC.seconds_for(1100e6) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            NVENC.seconds_for(-1)

    def test_nvenc_is_the_bottleneck(self):
        # Paper: end-to-end limited to 1100 MB/s on any fast link.
        assert effective_link_bandwidth(12.5, 4.57) == pytest.approx(1100.0)

    def test_slow_link_limited_by_wire(self):
        bandwidth = effective_link_bandwidth(0.1, 4.0)
        assert bandwidth == pytest.approx(100.0 * 4.0)

    def test_speedup_crossover(self):
        assert communication_speedup(0.1, 4.0) > 1.0  # slow link: codec wins
        assert communication_speedup(12.5, 4.0) < 1.0  # fast link: codec loses

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            effective_link_bandwidth(1.0, 0.0)


class TestComponents:
    def test_table3_values_verbatim(self):
        assert CODEC_COMPONENTS["h264-enc"].power_w == 1.1
        assert CODEC_COMPONENTS["h265-enc"].area_mm2 == 11.7
        assert CODEC_COMPONENTS["three-in-one-enc"].energy_pj_per_bit == 97.8
        assert CODEC_COMPONENTS["three-in-one-dec"].energy_pj_per_bit == 63.5

    def test_gpu_7nm_scaling(self):
        assert DEVICES["rtx3090-7nm"].area_mm2 == pytest.approx(398.0, abs=0.5)

    def test_nic_area_from_measurement(self):
        assert DEVICES["cx5-nic"].area_mm2 == pytest.approx(169.7, abs=0.1)

    def test_area_ratio_reproduces_199x(self):
        # Paper: "199x smaller than the GPU" for the H.264 pair.
        assert 150 < area_ratio("rtx3090-7nm", "h264") < 250

    def test_instance_aggregation(self):
        count, total = aggregate_to_bandwidth(0.05, 100.0)
        assert count == int(np.ceil(100.0 / INSTANCE_GBPS))
        assert total == pytest.approx(count * 0.05)
        with pytest.raises(ValueError):
            aggregate_to_bandwidth(1.0, 0)

    def test_breakdown_sums_to_one(self):
        assert sum(ENCODER_AREA_BREAKDOWN.values()) == pytest.approx(1.0)

    def test_inter_and_buffer_dominate(self):
        dropped = 1.0 - intra_only_area_fraction()
        assert dropped > 0.5

    def test_baseline_codecs_present(self):
        for name in ("huffman", "deflate", "lz4", "cabac"):
            assert f"{name}-enc" in BASELINE_HW_CODECS
            assert f"{name}-dec" in BASELINE_HW_CODECS


class TestEnergy:
    def test_31x_claim(self):
        assert compression_vs_transfer_ratio("three-in-one") == pytest.approx(
            31.7, abs=0.1
        )

    def test_4_32x_claim(self):
        assert compression_energy_ratio(5.0) == pytest.approx(4.32, abs=0.01)

    def test_raw_transfer_energy(self):
        joules = transfer_energy_joules(1e9)
        assert joules == pytest.approx(8e9 * NCCL_PJ_PER_BIT * 1e-12)

    def test_compressed_transfer_cheaper(self):
        raw = transfer_energy_joules(1e9)
        compressed = transfer_energy_joules(1e9, 5.0, "three-in-one")
        assert compressed < raw / 3

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            compression_energy_ratio(0.0)


class TestThreeInOne:
    def test_shared_fraction(self):
        assert SHARED_PIPELINE_FRACTION == 0.80
        assert overhead_versus_tensor_only() == pytest.approx(0.20)

    def test_video_activates_everything(self):
        assert "video-pipeline" in THREE_IN_ONE_ENC.active_blocks(InputKind.VIDEO)
        assert "video-pipeline" not in THREE_IN_ONE_ENC.active_blocks(InputKind.TENSOR)

    def test_tensor_area_is_shared_only(self):
        tensor_area = THREE_IN_ONE_ENC.active_area_mm2(InputKind.TENSOR)
        video_area = THREE_IN_ONE_ENC.active_area_mm2(InputKind.VIDEO)
        assert tensor_area < video_area
        assert tensor_area == pytest.approx(0.70 * 0.80)

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            THREE_IN_ONE_ENC.partition(1.5)
        split = THREE_IN_ONE_ENC.partition(0.5)
        assert split["tensor_gbps"] == pytest.approx(50.0)


class TestNICSystem:
    def test_compression_shrinks_nic(self):
        raw = communication_system_area(None, 1.0)
        compressed = communication_system_area("three-in-one", 4.57)
        assert compressed["nic_mm2"] < raw["nic_mm2"] / 4
        assert compressed["total_mm2"] < raw["total_mm2"]

    def test_baseline_codec_lookup(self):
        result = communication_system_area("huffman", 1.3)
        assert result["codec_mm2"] > 0

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError):
            communication_system_area("h266", 2.0)

    def test_energy_ordering_follows_ratio(self):
        low = communication_system_energy("three-in-one", 5.0, 1e9)
        high = communication_system_energy("three-in-one", 1.5, 1e9)
        assert low < high < communication_system_energy(None, 1.0, 1e9)


class TestClusterModel:
    def test_comm_bytes_zero_for_single_device_axes(self):
        w = Workload()
        dp_b, pp_b, tp_b = per_step_comm_bytes(w, dp=1, pp=1)
        assert dp_b == pp_b == tp_b == 0.0

    def test_dp_bytes_grow_with_ranks(self):
        w = Workload()
        small = per_step_comm_bytes(w, dp=2, pp=1)[0]
        large = per_step_comm_bytes(w, dp=16, pp=1)[0]
        assert large > small

    def test_nvenc_bypasses_on_fast_links(self):
        config = ClusterConfig(dp=2, pp=1, nic_gbps=100.0, codec=NVENC_OPTION)
        assert not config.uses_codec
        assert config.payload_capacity_gbps == pytest.approx(100.0)

    def test_nvenc_engages_on_slow_links(self):
        config = ClusterConfig(dp=2, pp=1, nic_gbps=4.0, codec=NVENC_OPTION)
        assert config.uses_codec
        assert config.payload_capacity_gbps == pytest.approx(8.8)

    def test_three_in_one_multiplies_bandwidth(self):
        config = ClusterConfig(dp=2, pp=1, nic_gbps=100.0, codec=THREE_IN_ONE_OPTION)
        assert config.payload_capacity_gbps == pytest.approx(100.0 * 16.0 / 3.5)

    def test_compression_beats_uncompressed_on_frontier(self):
        w = Workload()
        base = pareto_frontier(sweep(w, UNCOMPRESSED))
        comp = pareto_frontier(sweep(w, THREE_IN_ONE_OPTION))
        for budget in (50_000, 100_000, 200_000):
            b = performance_at_budget(base, budget)
            c = performance_at_budget(comp, budget)
            assert c.tokens_per_s >= b.tokens_per_s

    def test_speedup_grows_with_budget(self):
        w = Workload()
        base = pareto_frontier(sweep(w, UNCOMPRESSED))
        comp = pareto_frontier(sweep(w, THREE_IN_ONE_OPTION))

        def ratio(budget):
            return (
                performance_at_budget(comp, budget).tokens_per_s
                / performance_at_budget(base, budget).tokens_per_s
            )

        assert ratio(200_000) > ratio(20_000)

    def test_energy_gain_grows_with_model_size(self):
        gains = energy_efficiency_vs_model_size(
            [1e9, 70e9, 700e9], THREE_IN_ONE_OPTION
        )
        values = [v["gain"] for v in gains.values()]
        assert values[-1] > values[0] > 1.0

    def test_gpus_required_scales(self):
        assert gpus_required(7e9) < gpus_required(70e9) < gpus_required(700e9)

    def test_evaluate_returns_finite(self):
        point = evaluate(Workload(), ClusterConfig(4, 2, 100.0, UNCOMPRESSED))
        assert np.isfinite(point.step_time_s)
        assert point.tokens_per_s > 0
        assert 0 <= point.comm_fraction < 1
        assert point.tokens_per_joule > 0
