"""Tests for GPTQ, AWQ, rotation, NF4 and MXFP baselines."""

import numpy as np
import pytest

from repro.models.synthetic_weights import activation_like, weight_like
from repro.quant.awq import awq_quantize
from repro.quant.gptq import calibration_hessian, gptq_layer_error, gptq_quantize
from repro.quant.mxfp import (
    FP4_E2M1,
    FP8_E4M3,
    MXFP_FORMATS,
    mx_bits_per_value,
    mx_pack_bytes,
    mx_quantize,
    mx_roundtrip,
)
from repro.quant.nf4 import nf_quantize, normalfloat_codebook
from repro.quant.rotation import hadamard_matrix, incoherence, rotate_quantize
from repro.quant.rtn import rtn_roundtrip


@pytest.fixture(scope="module")
def layer():
    rng = np.random.default_rng(0)
    weight = weight_like(64, 48, seed=1).astype(np.float64)
    inputs = activation_like(256, 64, seed=2).astype(np.float64)
    return weight, inputs


class TestGPTQ:
    def test_hessian_is_spd(self, layer):
        _, inputs = layer
        hessian = calibration_hessian(inputs)
        eigenvalues = np.linalg.eigvalsh(hessian)
        assert eigenvalues.min() > 0

    def test_beats_rtn_in_output_space(self, layer):
        weight, inputs = layer
        gptq_w = gptq_quantize(weight, inputs, bits=3)
        rtn_w = rtn_roundtrip(weight, 3, symmetric=True)
        assert gptq_layer_error(weight, gptq_w, inputs) < gptq_layer_error(
            weight, rtn_w, inputs
        )

    def test_groupwise_beats_per_tensor(self, layer):
        weight, inputs = layer
        grouped = gptq_quantize(weight, inputs, bits=3, group_size=16)
        plain = gptq_quantize(weight, inputs, bits=3)
        assert gptq_layer_error(weight, grouped, inputs) <= gptq_layer_error(
            weight, plain, inputs
        )

    def test_more_bits_less_error(self, layer):
        weight, inputs = layer
        errors = [
            gptq_layer_error(weight, gptq_quantize(weight, inputs, bits=b), inputs)
            for b in (2, 4, 8)
        ]
        assert errors[0] > errors[1] > errors[2]

    def test_shape_mismatch_rejected(self, layer):
        weight, inputs = layer
        with pytest.raises(ValueError):
            gptq_quantize(weight, inputs[:, :10], bits=4)

    def test_bits_validation(self, layer):
        weight, inputs = layer
        with pytest.raises(ValueError):
            gptq_quantize(weight, inputs, bits=1)


class TestAWQ:
    def test_beats_rtn_with_activation_outliers(self, layer):
        weight, inputs = layer
        result = awq_quantize(weight, inputs, bits=3)
        reference = inputs @ weight
        awq_err = np.mean((inputs @ result.weight - reference) ** 2)
        rtn_err = np.mean(
            (inputs @ rtn_roundtrip(weight, 3, symmetric=True) - reference) ** 2
        )
        assert awq_err <= rtn_err

    def test_alpha_selected_from_grid(self, layer):
        weight, inputs = layer
        result = awq_quantize(weight, inputs, bits=4, alpha_grid=(0.0, 0.5))
        assert result.alpha in (0.0, 0.5)

    def test_output_shape(self, layer):
        weight, inputs = layer
        result = awq_quantize(weight, inputs, bits=4)
        assert result.weight.shape == weight.shape

    def test_shape_mismatch_rejected(self, layer):
        weight, inputs = layer
        with pytest.raises(ValueError):
            awq_quantize(weight, inputs[:, :3], bits=4)


class TestRotation:
    @pytest.mark.parametrize("n", [2, 8, 64])
    def test_hadamard_orthonormal(self, n):
        h = hadamard_matrix(n)
        assert np.allclose(h @ h.T, np.eye(n), atol=1e-10)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            hadamard_matrix(12)

    def test_rotation_reduces_incoherence(self):
        acts = activation_like(64, 128, seed=3).astype(np.float64)
        from repro.quant.rotation import randomized_hadamard

        rotated = acts @ randomized_hadamard(128, seed=0).T
        assert incoherence(rotated) < incoherence(acts)

    def test_rotation_beats_plain_rtn_on_outliers(self):
        acts = activation_like(128, 64, seed=4).astype(np.float64)
        plain = rtn_roundtrip(acts, 4, symmetric=False)
        rotated = rotate_quantize(acts, 4)
        assert np.mean((rotated - acts) ** 2) < np.mean((plain - acts) ** 2)

    def test_non_power_of_two_channels_handled(self):
        acts = activation_like(32, 48, seed=5).astype(np.float64)
        restored = rotate_quantize(acts, 6)
        assert restored.shape == acts.shape
        assert np.mean((restored - acts) ** 2) < np.var(acts)


class TestNF4:
    def test_codebook_properties(self):
        cb = normalfloat_codebook(4)
        assert len(cb) == 16
        assert cb[0] == pytest.approx(-1.0)
        assert cb[-1] == pytest.approx(1.0)
        assert np.any(cb == 0.0)
        assert np.all(np.diff(cb) > 0)

    def test_beats_rtn_on_gaussian(self):
        rng = np.random.default_rng(6)
        values = rng.normal(0, 1, 8192)
        nf_err = np.mean((nf_quantize(values, 4) - values) ** 2)
        rtn_err = np.mean((rtn_roundtrip(values, 4, group_size=64) - values) ** 2)
        assert nf_err < rtn_err

    def test_shape_preserved(self):
        values = np.random.default_rng(7).normal(size=(13, 17))
        assert nf_quantize(values).shape == (13, 17)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            normalfloat_codebook(1)


class TestMXFP:
    def test_grid_contains_zero_and_max(self):
        grid = FP4_E2M1.grid()
        assert grid[0] == 0.0
        assert grid[-1] == pytest.approx(FP4_E2M1.max_value)

    def test_roundtrip_error_scales_with_format(self):
        rng = np.random.default_rng(8)
        values = rng.normal(0, 1, 4096)
        errors = [
            np.mean((mx_roundtrip(values, name) - values) ** 2)
            for name in ("mxfp4", "mxfp6", "mxfp8")
        ]
        assert errors[0] > errors[1] > errors[2]

    def test_bits_per_value(self):
        assert mx_bits_per_value(FP4_E2M1) == pytest.approx(4.25)
        assert mx_bits_per_value(FP8_E4M3) == pytest.approx(8.25)

    def test_zero_block(self):
        restored, _ = mx_quantize(np.zeros(64), FP4_E2M1)
        assert np.all(restored == 0)

    def test_pack_bytes_length(self):
        values = np.random.default_rng(9).normal(size=128)
        packed = mx_pack_bytes(values, FP4_E2M1)
        assert len(packed) == (128 // 32) * 33  # 1 scale byte + 32 codes

    def test_all_named_formats_roundtrip(self):
        values = np.random.default_rng(10).normal(size=256)
        for name in MXFP_FORMATS:
            restored = mx_roundtrip(values, name)
            assert restored.shape == values.shape
            assert np.all(np.isfinite(restored))
