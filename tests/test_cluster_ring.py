"""Consistent-hash ring: determinism, evenness, and bounded churn.

The rebalancing claims the cluster layer rests on (satellite 4):
killing a shard moves *only* its key range, and re-admission restores
the exact original assignment.
"""

import pytest

from repro.cluster.ring import HashRing


def _ring(shards=("shard-0", "shard-1", "shard-2"), vnodes=64):
    ring = HashRing(vnodes=vnodes)
    for shard in shards:
        ring.add(shard)
    return ring


KEYS = [f"t{session}-{n}" for session in range(8) for n in range(64)]


class TestPlacement:
    def test_deterministic_across_instances_and_insert_order(self):
        forward = _ring(("a", "b", "c"))
        backward = _ring(("c", "b", "a"))
        assert forward.assignment(KEYS, r=2) == backward.assignment(KEYS, r=2)

    def test_replicas_are_distinct_shards(self):
        ring = _ring()
        for key in KEYS[:64]:
            replicas = ring.replicas(key, 2)
            assert len(replicas) == 2
            assert len(set(replicas)) == 2

    def test_replicas_bounded_by_membership(self):
        ring = _ring(("only",))
        assert ring.replicas("k", 3) == ("only",)

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.replicas("k", 2) == ()
        with pytest.raises(LookupError):
            ring.primary("k")

    def test_load_split_roughly_even(self):
        ring = _ring(vnodes=64)
        split = ring.load_split(KEYS)
        # blake2b placement is deterministic, so this bound is stable:
        # with 64 vnodes no shard should own less than half its fair
        # share or more than double it.
        fair = len(KEYS) / len(split)
        for shard, owned in split.items():
            assert fair / 2 < owned < fair * 2, (shard, split)

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)
        with pytest.raises(ValueError):
            _ring().replicas("k", 0)

    def test_membership_idempotent(self):
        ring = _ring(("a", "b"))
        ring.add("a")
        assert len(ring) == 2
        ring.remove("missing")
        assert ring.shard_ids == ("a", "b")


class TestBoundedChurn:
    def test_removal_moves_only_the_departed_shards_range(self):
        ring = _ring()
        before = {key: ring.primary(key) for key in KEYS}
        ring.remove("shard-1")
        for key in KEYS:
            if before[key] != "shard-1":
                # Keys the departed shard did not own must not move.
                assert ring.primary(key) == before[key]
            else:
                assert ring.primary(key) != "shard-1"

    def test_removal_keeps_unaffected_replica_sets(self):
        ring = _ring()
        before = ring.assignment(KEYS, r=2)
        ring.remove("shard-2")
        after = ring.assignment(KEYS, r=2)
        for key in KEYS:
            if "shard-2" not in before[key]:
                assert after[key] == before[key]

    def test_readmission_restores_original_assignment(self):
        ring = _ring()
        original = ring.assignment(KEYS, r=2)
        ring.remove("shard-0")
        assert ring.assignment(KEYS, r=2) != original
        ring.add("shard-0")
        assert ring.assignment(KEYS, r=2) == original

    def test_churn_fraction_near_fair_share(self):
        ring = _ring()
        before = {key: ring.primary(key) for key in KEYS}
        ring.remove("shard-1")
        moved = sum(
            1 for key in KEYS if ring.primary(key) != before[key]
        )
        # Exactly the departed shard's share moves; its share is near
        # 1/3 of the keyspace (evenness already pinned above).
        departed = sum(1 for owner in before.values() if owner == "shard-1")
        assert moved == departed
