"""Fault hardening of :func:`repro.parallel.parallel_map`: broken-pool
recovery, per-item timeouts, and deadline propagation (PR 4 satellite).
"""

import os
import signal
import time

import pytest

import repro.telemetry as telemetry
from repro.parallel import (
    BrokenPoolError,
    ParallelConfig,
    WorkerTimeoutError,
    discard_pool,
    get_executor,
    parallel_map,
    pool_stats,
)
from repro.resilience.deadline import Deadline, DeadlineExceeded


def _square(x):
    return x * x


def _kill_in_pool_worker(item):
    """Dies by SIGKILL inside a pool worker; survives in the caller.

    Guarded on the process name, so the serial re-run (main process)
    executes the same deterministic work unharmed -- mirroring a
    transient worker death (OOM kill) that clears on re-execution.
    """
    import multiprocessing

    if item == 5 and multiprocessing.current_process().name != "MainProcess":
        os.kill(os.getpid(), signal.SIGKILL)
    return item * item


def _sleep_for(item):
    time.sleep(item)
    return item


class TestBrokenPoolRecovery:
    def test_worker_death_mid_batch_yields_identical_output(self):
        """A SIGKILLed worker must not change the result: the batch is
        re-run serially and matches the healthy-pool output exactly."""
        config = ParallelConfig(workers=2, executor="process")
        items = list(range(12))
        before = pool_stats()["breakages"]
        with telemetry.session() as registry:
            result = parallel_map(
                _kill_in_pool_worker, items, config, label="killtest"
            )
            counters = dict(registry.counters)
        assert result == [x * x for x in range(12)]
        assert pool_stats()["breakages"] == before + 1
        assert counters.get("parallel.broken_pools") == 1
        assert counters.get("parallel.broken_pool_serial_reruns") == 1

    def test_on_broken_raise_propagates_for_supervisors(self):
        config = ParallelConfig(workers=2, executor="process")
        with pytest.raises(BrokenPoolError):
            parallel_map(
                _kill_in_pool_worker, list(range(12)), config,
                label="killraise", on_broken="raise",
            )

    def test_invalid_on_broken_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1, 2], None, on_broken="explode")


class TestTimeouts:
    def test_straggler_raises_worker_timeout_with_index(self):
        config = ParallelConfig(workers=2, executor="thread")
        items = [0.0, 0.0, 0.0, 1.0, 0.0]
        started = time.perf_counter()
        with pytest.raises(WorkerTimeoutError) as err:
            parallel_map(_sleep_for, items, config, timeout_s=0.1)
        assert err.value.index == 3
        assert time.perf_counter() - started < 1.0

    def test_fast_items_unaffected_by_timeout(self):
        config = ParallelConfig(workers=2, executor="thread")
        result = parallel_map(_square, range(10), config, timeout_s=5.0)
        assert result == [x * x for x in range(10)]


class TestDeadlines:
    def test_serial_path_checks_deadline_between_items(self):
        with pytest.raises(DeadlineExceeded):
            parallel_map(_square, [1, 2, 3], None, deadline=Deadline.after(0.0))

    def test_pool_path_deadline_expiry(self):
        config = ParallelConfig(workers=2, executor="thread")
        with pytest.raises(DeadlineExceeded):
            parallel_map(
                _sleep_for, [0.2, 0.2, 0.2, 0.2], config,
                deadline=Deadline.after(0.05),
            )

    def test_generous_deadline_is_invisible(self):
        config = ParallelConfig(workers=2, executor="thread")
        result = parallel_map(
            _square, range(8), config, deadline=Deadline.after(30.0)
        )
        assert result == [x * x for x in range(8)]


class TestExecutorManagement:
    def test_get_executor_rejects_serial_config(self):
        with pytest.raises(ValueError):
            get_executor(ParallelConfig(workers=1, executor="serial"))

    def test_get_executor_is_shared(self):
        config = ParallelConfig(workers=2, executor="thread")
        assert get_executor(config) is get_executor(config)

    def test_discard_pool_drops_the_shared_executor(self):
        config = ParallelConfig(workers=3, executor="thread")
        first = get_executor(config)
        assert discard_pool("thread", 3)
        assert get_executor(config) is not first
        assert not discard_pool("thread", 99)  # never existed
