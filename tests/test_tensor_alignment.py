"""Tests for the MX data-type alignment unit."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tensor.alignment import MX_BLOCK, mx_align, mx_unalign


class TestMXAlignment:
    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0, 1, (64, 64))
        codes, alignment = mx_align(values)
        restored = mx_unalign(codes, alignment, values.shape)
        # Per-block scaling: error ~ blockmax/127.5 per value.
        block_max = np.abs(values).reshape(-1, MX_BLOCK).max(axis=1)
        bound = (2.0 ** np.ceil(np.log2(block_max / 0.999)) / 127.5).max()
        assert np.max(np.abs(restored - values)) <= bound

    def test_outlier_block_does_not_poison_others(self):
        """The point of micro-scaling vs per-frame min-max."""
        rng = np.random.default_rng(1)
        values = rng.normal(0, 0.01, 1024)
        values[0] = 100.0  # outlier confined to block 0
        codes, alignment = mx_align(values)
        restored = mx_unalign(codes, alignment, values.shape)
        clean_region = slice(MX_BLOCK, None)
        clean_error = np.max(np.abs(restored[clean_region] - values[clean_region]))
        # Per-frame min-max would give step ~ 200/255 = 0.78 everywhere;
        # MX alignment keeps the clean blocks at their own tiny scale.
        assert clean_error < 0.01

    def test_side_info_is_small(self):
        rng = np.random.default_rng(2)
        values = rng.normal(0, 1, 8192)
        _, alignment = mx_align(values)
        assert alignment.side_bits_per_value < 0.3  # ~8/32 bits raw, less coded

    def test_zero_tensor(self):
        codes, alignment = mx_align(np.zeros(100))
        restored = mx_unalign(codes, alignment, (100,))
        assert np.allclose(restored, 0.0)

    def test_non_multiple_length(self):
        values = np.random.default_rng(3).normal(0, 1, 45)
        codes, alignment = mx_align(values)
        restored = mx_unalign(codes, alignment, values.shape)
        assert restored.shape == (45,)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            mx_align(np.array([1.0, np.nan]))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=500), st.integers(min_value=0, max_value=9999))
    def test_property_roundtrip_bounded(self, size, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(0, rng.uniform(1e-4, 1e4), size)
        codes, alignment = mx_align(values)
        restored = mx_unalign(codes, alignment, values.shape)
        scale = np.abs(values).max() or 1.0
        assert np.max(np.abs(restored - values)) <= scale / 60
