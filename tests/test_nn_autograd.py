"""Autograd engine tests: every backward checked against finite differences."""

import numpy as np
import pytest

from repro.nn import autograd
from repro.nn.autograd import Parameter, Tensor, no_grad


def numeric_grad(fn, values, eps=1e-6):
    """Central finite differences of a scalar-valued fn over ``values``."""
    grad = np.zeros_like(values, dtype=np.float64)
    flat = values.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn(values)
        flat[i] = original - eps
        down = fn(values)
        flat[i] = original
        gflat[i] = (up - down) / (2 * eps)
    return grad


def check_op(op, shape=(3, 4), seed=0, atol=1e-5):
    rng = np.random.default_rng(seed)
    values = rng.normal(0, 1, shape)
    param = Parameter(values.copy())
    out = op(param)
    loss = (out * out).sum() if out.size > 1 else out
    loss.backward()

    def scalar_fn(vals):
        result = op(Tensor(vals)).data
        return float((result * result).sum()) if result.size > 1 else float(result)

    expected = numeric_grad(scalar_fn, values.copy())
    assert np.allclose(param.grad, expected, atol=atol), (
        f"max diff {np.max(np.abs(param.grad - expected))}"
    )


class TestElementwiseOps:
    def test_add(self):
        check_op(lambda x: x + 2.0)

    def test_add_broadcast(self):
        rng = np.random.default_rng(1)
        other = rng.normal(size=(1, 4))
        check_op(lambda x: x + Tensor(other))

    def test_mul(self):
        check_op(lambda x: x * 3.0)

    def test_mul_tensor(self):
        rng = np.random.default_rng(2)
        other = rng.normal(size=(3, 4))
        check_op(lambda x: x * Tensor(other))

    def test_sub_and_neg(self):
        check_op(lambda x: 1.0 - x)

    def test_div(self):
        check_op(lambda x: x / 2.5)

    def test_div_by_tensor(self):
        other = np.abs(np.random.default_rng(3).normal(size=(3, 4))) + 1.0
        check_op(lambda x: x / Tensor(other))

    def test_pow(self):
        check_op(lambda x: x**3)

    def test_relu(self):
        check_op(lambda x: x.relu(), seed=5)

    def test_tanh(self):
        check_op(lambda x: x.tanh())

    def test_gelu(self):
        check_op(lambda x: x.gelu())

    def test_exp(self):
        check_op(lambda x: x.exp())

    def test_log(self):
        check_op(lambda x: (x * x + 1.0).log())


class TestMatmulAndShape:
    def test_matmul(self):
        rng = np.random.default_rng(4)
        other = rng.normal(size=(4, 5))
        check_op(lambda x: x @ Tensor(other))

    def test_matmul_left_grad(self):
        rng = np.random.default_rng(5)
        left = rng.normal(size=(2, 3))
        check_op(lambda x: Tensor(left) @ x, shape=(3, 4))

    def test_batched_matmul(self):
        rng = np.random.default_rng(6)
        other = rng.normal(size=(2, 4, 5))
        check_op(lambda x: x @ Tensor(other), shape=(2, 3, 4))

    def test_reshape(self):
        check_op(lambda x: x.reshape(4, 3))

    def test_transpose(self):
        check_op(lambda x: x.transpose(1, 0))

    def test_transpose_3d(self):
        check_op(lambda x: x.transpose(2, 0, 1), shape=(2, 3, 4))

    def test_getitem(self):
        check_op(lambda x: x[1:, :2])

    def test_sum_all(self):
        check_op(lambda x: x.sum())

    def test_sum_axis(self):
        check_op(lambda x: x.sum(axis=1))

    def test_mean(self):
        check_op(lambda x: x.mean(axis=0))

    def test_softmax(self):
        check_op(lambda x: x.softmax(axis=-1))

    def test_concat(self):
        rng = np.random.default_rng(7)
        other = rng.normal(size=(3, 4))
        check_op(lambda x: autograd.concat([x, Tensor(other)], axis=0))


class TestFusedOps:
    def test_layer_norm_grad(self):
        rng = np.random.default_rng(8)
        x_vals = rng.normal(size=(2, 5))
        gamma_vals = rng.normal(1.0, 0.1, 5)
        beta_vals = rng.normal(0.0, 0.1, 5)

        x = Parameter(x_vals.copy())
        gamma = Parameter(gamma_vals.copy())
        beta = Parameter(beta_vals.copy())
        out = autograd.layer_norm(x, gamma, beta)
        (out * out).sum().backward()

        def fn_x(vals):
            o = autograd.layer_norm(Tensor(vals), Tensor(gamma_vals), Tensor(beta_vals))
            return float((o.data**2).sum())

        assert np.allclose(x.grad, numeric_grad(fn_x, x_vals.copy()), atol=1e-4)

        def fn_g(vals):
            o = autograd.layer_norm(Tensor(x_vals), Tensor(vals), Tensor(beta_vals))
            return float((o.data**2).sum())

        assert np.allclose(gamma.grad, numeric_grad(fn_g, gamma_vals.copy()), atol=1e-4)

    def test_embedding_grad_scatter(self):
        weight = Parameter(np.random.default_rng(9).normal(size=(10, 4)))
        indices = np.array([[1, 1, 3]])
        out = autograd.embedding(weight, indices)
        out.sum().backward()
        assert weight.grad[1].sum() == pytest.approx(8.0)  # row 1 used twice
        assert weight.grad[3].sum() == pytest.approx(4.0)
        assert np.all(weight.grad[0] == 0)

    def test_cross_entropy_matches_manual(self):
        rng = np.random.default_rng(10)
        logits_vals = rng.normal(size=(2, 3, 5))
        targets = np.array([[1, 2, 0], [4, 4, 3]])
        logits = Parameter(logits_vals.copy())
        loss = autograd.cross_entropy(logits, targets)

        probs = np.exp(logits_vals - logits_vals.max(-1, keepdims=True))
        probs /= probs.sum(-1, keepdims=True)
        rows = probs.reshape(-1, 5)[np.arange(6), targets.reshape(-1)]
        assert float(loss.data) == pytest.approx(-np.mean(np.log(rows)))

    def test_cross_entropy_grad(self):
        rng = np.random.default_rng(11)
        logits_vals = rng.normal(size=(2, 4))
        targets = np.array([1, 3])
        logits = Parameter(logits_vals.copy())
        autograd.cross_entropy(logits, targets).backward()

        def fn(vals):
            return float(autograd.cross_entropy(Tensor(vals), targets).data)

        assert np.allclose(
            logits.grad, numeric_grad(fn, logits_vals.copy()), atol=1e-5
        )

    def test_cross_entropy_ignores_padding(self):
        logits = Parameter(np.random.default_rng(12).normal(size=(1, 3, 4)))
        targets = np.array([[1, -100, 2]])
        loss = autograd.cross_entropy(logits, targets)
        loss.backward()
        assert np.all(logits.grad[0, 1] == 0)


class TestEngine:
    def test_grad_accumulates_over_reuse(self):
        x = Parameter(np.array([2.0]))
        y = x * 3.0 + x * 4.0
        y.backward()
        assert x.grad[0] == pytest.approx(7.0)

    def test_diamond_graph(self):
        x = Parameter(np.array([1.5]))
        a = x * 2.0
        b = x * 3.0
        (a * b).backward()  # d/dx (6 x^2) = 12 x
        assert x.grad[0] == pytest.approx(18.0)

    def test_no_grad_blocks_graph(self):
        x = Parameter(np.ones(3))
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_backward_requires_scalar(self):
        x = Parameter(np.ones((2, 2)))
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_detached_raises(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_detach_cuts_graph(self):
        x = Parameter(np.array([3.0]))
        y = (x * 2.0).detach()
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Parameter(np.array([1.0]))
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_deep_chain_no_recursion_error(self):
        x = Parameter(np.array([1.0]))
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.backward()
        assert x.grad[0] == pytest.approx(1.0)
