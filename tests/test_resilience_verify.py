"""``llm265 verify``, checkpoint partial load, and cache self-healing."""

import numpy as np
import pytest

import repro.telemetry as telemetry
from repro.cli import main
from repro.codec.encoder import EncoderConfig, encode_frames
from repro.models.synthetic_weights import weight_like
from repro.models.zoo import load_cached_state, save_cached_state
from repro.resilience import verify_path
from repro.resilience.verify import verify_bytes
from repro.tensor.checkpoint import load_checkpoint, save_checkpoint
from repro.tensor.codec import TensorCodec
from repro.tensor.precision import quantize_to_uint8


@pytest.fixture(scope="module")
def container_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("verify") / "weights.lv265"
    codec = TensorCodec(tile=32)
    blob = codec.encode(weight_like(64, 64, seed=3), qp=22).to_bytes()
    path.write_bytes(blob)
    return path


@pytest.fixture(scope="module")
def stream_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("verify") / "frames.bin"
    frames = [
        quantize_to_uint8(weight_like(32, 32, seed=s))[0] for s in range(3)
    ]
    path.write_bytes(encode_frames(frames, EncoderConfig(qp=20)).data)
    return path


@pytest.fixture(scope="module")
def checkpoint_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("verify") / "model.lvck"
    rng = np.random.default_rng(1)
    save_checkpoint(
        {
            "layer.weight": rng.standard_normal((32, 32)),
            "layer.bias": rng.standard_normal(8),
        },
        str(path),
        bits_per_value=4.0,
    )
    return path


def _damaged(path, tmp_path, offset=-10):
    blob = bytearray(path.read_bytes())
    blob[offset] ^= 0xFF
    out = tmp_path / f"damaged-{path.name}"
    out.write_bytes(bytes(blob))
    return out


class TestVerifyReports:
    @pytest.mark.parametrize("deep", [False, True])
    def test_clean_container(self, container_file, deep):
        report = verify_path(str(container_file), deep=deep)
        assert report.ok
        assert report.kind == "container"
        assert report.checked >= 2  # metadata + stream header + slices
        assert report.deep == deep
        assert "OK" in report.summary()

    @pytest.mark.parametrize("deep", [False, True])
    def test_clean_stream(self, stream_file, deep):
        report = verify_path(str(stream_file), deep=deep)
        assert report.ok
        assert report.kind == "stream"
        assert report.checked == 4  # header + 3 frame slices

    @pytest.mark.parametrize("deep", [False, True])
    def test_clean_checkpoint(self, checkpoint_file, deep):
        report = verify_path(str(checkpoint_file), deep=deep)
        assert report.ok
        assert report.kind == "checkpoint"
        assert report.checked == 2  # one entry per tensor

    def test_damaged_container_located(self, container_file, tmp_path):
        bad = _damaged(container_file, tmp_path)
        report = verify_path(str(bad))
        assert not report.ok
        assert any("slice" in i.location for i in report.issues)
        assert "DAMAGED" in report.summary()

    def test_damaged_stream_located(self, stream_file, tmp_path):
        bad = _damaged(stream_file, tmp_path)
        report = verify_path(str(bad))
        assert not report.ok

    def test_damaged_checkpoint_names_entry(self, checkpoint_file, tmp_path):
        bad = _damaged(checkpoint_file, tmp_path, offset=-3)
        report = verify_path(str(bad))
        assert not report.ok
        assert any(i.location.startswith("entry") for i in report.issues)

    def test_unknown_magic(self):
        report = verify_bytes(b"\x00\x01\x02\x03garbage")
        assert not report.ok
        assert report.kind == "unknown"

    def test_verify_never_raises_on_garbage(self):
        rng = np.random.default_rng(8)
        for size in (0, 1, 4, 21, 64, 333):
            raw = bytes(rng.integers(0, 256, size, dtype=np.uint8))
            report = verify_bytes(raw)
            assert not report.ok  # garbage is damage, not an exception


class TestVerifyCli:
    def test_clean_files_exit_zero(
        self, container_file, stream_file, checkpoint_file, capsys
    ):
        code = main(
            ["verify", str(container_file), str(stream_file), str(checkpoint_file)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("OK") == 3

    def test_deep_flag(self, container_file, capsys):
        assert main(["verify", "--deep", str(container_file)]) == 0
        assert "deep check" in capsys.readouterr().out

    def test_damaged_file_exits_two(self, container_file, tmp_path, capsys):
        bad = _damaged(container_file, tmp_path)
        code = main(["verify", str(container_file), str(bad)])
        out = capsys.readouterr().out
        assert code == 2
        assert "OK" in out and "DAMAGED" in out


class TestCheckpointRoundtrip:
    def test_mixed_state_roundtrips(self, tmp_path):
        rng = np.random.default_rng(5)
        state = {
            "big.weight": rng.standard_normal((48, 48)),  # codec path
            "tiny.bias": rng.standard_normal(6),  # raw path
            "scalarish": np.array([1.5], dtype=np.float32),
        }
        path = tmp_path / "mixed.lvck"
        stats = save_checkpoint(state, str(path), bits_per_value=4.0)
        loaded = load_checkpoint(str(path))
        assert set(loaded) == set(state)
        # Raw entries are stored FP32, so float64 inputs round to it.
        np.testing.assert_allclose(
            loaded["tiny.bias"], state["tiny.bias"], rtol=1e-6
        )
        np.testing.assert_array_equal(loaded["scalarish"], state["scalarish"])
        error = np.abs(loaded["big.weight"] - state["big.weight"]).max()
        assert error < 0.5  # lossy but sane
        assert stats.compressed_bytes == path.stat().st_size
        assert verify_path(str(path), deep=True).ok


class TestCacheSelfHealing:
    def test_corrupt_cache_detected_and_deleted(self, tmp_path):
        path = tmp_path / "entry.npz"
        path.write_bytes(b"this is not a zip file at all")
        with telemetry.session() as registry:
            assert load_cached_state(path) is None
            counters = dict(registry.counters)
        assert counters["cache.corrupt"] == 1
        assert not path.exists()  # quarantined

    def test_truncated_cache_detected(self, tmp_path):
        path = tmp_path / "entry.npz"
        save_cached_state(path, {"w": np.arange(10.0)})
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        assert load_cached_state(path) is None
        assert not path.exists()

    def test_clean_cache_roundtrips(self, tmp_path):
        path = tmp_path / "entry.npz"
        state = {"w": np.arange(12.0).reshape(3, 4), "b": np.zeros(3)}
        save_cached_state(path, state)
        loaded = load_cached_state(path)
        assert loaded is not None
        for key in state:
            np.testing.assert_array_equal(loaded[key], state[key])
        # No stray temp files from the atomic write.
        assert list(path.parent.glob("*.tmp.*")) == []

    def test_load_model_regenerates_corrupt_cache(self, tmp_path, monkeypatch):
        from repro.models.zoo import load_model

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        cache = tmp_path / "tiny-sim.npz"
        cache.write_bytes(b"garbage cache entry")
        with telemetry.session() as registry:
            model, _corpus = load_model("tiny-sim")
            counters = dict(registry.counters)
        assert counters["cache.corrupt"] == 1
        assert counters["cache.regenerated"] == 1
        assert cache.exists()  # regenerated by retraining
        # The regenerated entry is clean: a second load uses it.
        with telemetry.session() as registry:
            load_model("tiny-sim")
            assert "cache.corrupt" not in registry.counters
