"""Tests for compressed model checkpoints."""

import numpy as np
import pytest

from repro.models.zoo import load_model
from repro.tensor.checkpoint import load_checkpoint, save_checkpoint


@pytest.fixture()
def state():
    model, _ = load_model("tiny-sim")
    return model.state_dict()


class TestCheckpoint:
    def test_roundtrip_keys_and_shapes(self, state, tmp_path):
        path = str(tmp_path / "model.lv265")
        save_checkpoint(state, path, bits_per_value=3.0)
        restored = load_checkpoint(path)
        assert set(restored) == set(state)
        for name in state:
            assert restored[name].shape == state[name].shape

    def test_compression_ratio_reported(self, state, tmp_path):
        path = str(tmp_path / "model.lv265")
        stats = save_checkpoint(state, path, bits_per_value=2.9)
        # The tiny test model's per-tensor overhead caps the ratio; real
        # matrices reach ~5x (see test below).
        assert stats.compression_ratio > 1.5
        assert stats.num_compressed_tensors > 0
        assert stats.num_raw_tensors > 0  # norms/biases stay raw

    def test_compression_ratio_on_realistic_matrices(self, tmp_path):
        from repro.models.synthetic_weights import weight_like

        state = {f"layer{i}.weight": weight_like(128, 128, seed=i) for i in range(3)}
        path = str(tmp_path / "big.lv265")
        stats = save_checkpoint(state, path, bits_per_value=2.9)
        assert stats.compression_ratio > 4.0

    def test_small_tensors_lossless(self, state, tmp_path):
        path = str(tmp_path / "model.lv265")
        save_checkpoint(state, path)
        restored = load_checkpoint(path)
        for name, tensor in state.items():
            if tensor.ndim < 2 or tensor.size < 256:
                assert np.allclose(restored[name], tensor, atol=1e-6), name

    def test_weights_restored_within_budget_error(self, state, tmp_path):
        path = str(tmp_path / "model.lv265")
        save_checkpoint(state, path, bits_per_value=4.0)
        restored = load_checkpoint(path)
        for name, tensor in state.items():
            if tensor.ndim >= 2 and tensor.size >= 256:
                rel = np.mean((restored[name] - tensor) ** 2) / (np.var(tensor) or 1)
                # Tiny trained matrices are near-incompressible; bound
                # the damage rather than demand near-losslessness.  The
                # CRC32 resilience framing eats a sliver of the bit
                # budget, nudging the boundary QP one step coarser.
                assert rel < 0.7, name

    def test_model_still_works_after_reload(self, state, tmp_path):
        model, corpus = load_model("tiny-sim")
        base_ppl = model.perplexity(corpus.sample(8, seed=11))
        path = str(tmp_path / "model.lv265")
        save_checkpoint(state, path, bits_per_value=3.5)
        model.load_state_dict(load_checkpoint(path))
        lossy_ppl = model.perplexity(corpus.sample(8, seed=11))
        assert lossy_ppl < base_ppl * 1.6

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 50)
        with pytest.raises(ValueError):
            load_checkpoint(str(path))

    def test_bad_version_rejected(self, state, tmp_path):
        path = tmp_path / "model.lv265"
        save_checkpoint(state, str(path))
        blob = bytearray(path.read_bytes())
        blob[4] = 99
        path.write_bytes(bytes(blob))
        with pytest.raises(ValueError):
            load_checkpoint(str(path))
