"""Tests for compressed model checkpoints."""

import os

import numpy as np
import pytest

from repro.models.zoo import load_model
from repro.tensor.checkpoint import (
    load_checkpoint,
    load_checkpoint_with_report,
    save_checkpoint,
)


@pytest.fixture()
def state():
    model, _ = load_model("tiny-sim")
    return model.state_dict()


class TestCheckpoint:
    def test_roundtrip_keys_and_shapes(self, state, tmp_path):
        path = str(tmp_path / "model.lv265")
        save_checkpoint(state, path, bits_per_value=3.0)
        restored = load_checkpoint(path)
        assert set(restored) == set(state)
        for name in state:
            assert restored[name].shape == state[name].shape

    def test_compression_ratio_reported(self, state, tmp_path):
        path = str(tmp_path / "model.lv265")
        stats = save_checkpoint(state, path, bits_per_value=2.9)
        # The tiny test model's per-tensor overhead caps the ratio; real
        # matrices reach ~5x (see test below).
        assert stats.compression_ratio > 1.5
        assert stats.num_compressed_tensors > 0
        assert stats.num_raw_tensors > 0  # norms/biases stay raw

    def test_compression_ratio_on_realistic_matrices(self, tmp_path):
        from repro.models.synthetic_weights import weight_like

        state = {f"layer{i}.weight": weight_like(128, 128, seed=i) for i in range(3)}
        path = str(tmp_path / "big.lv265")
        stats = save_checkpoint(state, path, bits_per_value=2.9)
        assert stats.compression_ratio > 4.0

    def test_small_tensors_lossless(self, state, tmp_path):
        path = str(tmp_path / "model.lv265")
        save_checkpoint(state, path)
        restored = load_checkpoint(path)
        for name, tensor in state.items():
            if tensor.ndim < 2 or tensor.size < 256:
                assert np.allclose(restored[name], tensor, atol=1e-6), name

    def test_weights_restored_within_budget_error(self, state, tmp_path):
        path = str(tmp_path / "model.lv265")
        save_checkpoint(state, path, bits_per_value=4.0)
        restored = load_checkpoint(path)
        for name, tensor in state.items():
            if tensor.ndim >= 2 and tensor.size >= 256:
                rel = np.mean((restored[name] - tensor) ** 2) / (np.var(tensor) or 1)
                # Tiny trained matrices are near-incompressible; bound
                # the damage rather than demand near-losslessness.  The
                # CRC32 resilience framing eats a sliver of the bit
                # budget, nudging the boundary QP one step coarser.
                assert rel < 0.7, name

    def test_model_still_works_after_reload(self, state, tmp_path):
        model, corpus = load_model("tiny-sim")
        base_ppl = model.perplexity(corpus.sample(8, seed=11))
        path = str(tmp_path / "model.lv265")
        save_checkpoint(state, path, bits_per_value=3.5)
        model.load_state_dict(load_checkpoint(path))
        lossy_ppl = model.perplexity(corpus.sample(8, seed=11))
        assert lossy_ppl < base_ppl * 1.6

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 50)
        with pytest.raises(ValueError):
            load_checkpoint(str(path))

    def test_bad_version_rejected(self, state, tmp_path):
        path = tmp_path / "model.lv265"
        save_checkpoint(state, str(path))
        blob = bytearray(path.read_bytes())
        blob[4] = 99
        path.write_bytes(bytes(blob))
        with pytest.raises(ValueError):
            load_checkpoint(str(path))


class TestConcurrentWriters:
    """Two writers racing ``save()`` on one path (PR 4 satellite).

    The survivor must always be ONE writer's complete, CRC-clean v2
    checkpoint -- never an interleaving of both.  Writer identity is
    carried redundantly (a raw tag scalar AND the compressed weight's
    magnitude), so a mixed file is detectable.
    """

    @staticmethod
    def _state(tag):
        return {
            "weight": np.full((32, 32), 5.0 * (tag - 1), dtype=np.float32),
            "tag": np.array([float(tag)], dtype=np.float32),
        }

    @staticmethod
    def _assert_single_writer(path):
        loaded = load_checkpoint(path)  # strict: v2 header + every CRC
        assert set(loaded) == {"weight", "tag"}
        tag = float(loaded["tag"][0])
        assert tag in (1.0, 2.0)
        mean = float(np.mean(loaded["weight"]))
        # tag 1 wrote ~0.0 everywhere, tag 2 wrote ~5.0: the weight must
        # come from the same writer as the tag.
        expected = 5.0 * (tag - 1.0)
        assert abs(mean - expected) < 1.0
        return tag

    def test_barrier_synchronised_race_leaves_one_intact_writer(
        self, tmp_path, monkeypatch
    ):
        import os as os_module
        import threading

        path = str(tmp_path / "race.lv265")
        barrier = threading.Barrier(2, timeout=30.0)
        real_replace = os_module.replace

        def synced_replace(src, dst):
            # Both temp files are fully staged and fsynced before either
            # is allowed to land -- the worst-case interleaving.
            barrier.wait()
            real_replace(src, dst)

        monkeypatch.setattr(os_module, "replace", synced_replace)

        errors = []

        def writer(tag):
            try:
                save_checkpoint(self._state(tag), path)
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(tag,)) for tag in (1, 2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        monkeypatch.undo()
        assert not errors
        self._assert_single_writer(path)
        leftovers = [f for f in os.listdir(tmp_path) if ".tmp." in f]
        assert leftovers == []  # both temp stages were consumed or never leaked

    def test_unsynchronised_write_storm(self, tmp_path):
        import threading

        path = str(tmp_path / "storm.lv265")

        def writer(tag):
            for _ in range(4):
                save_checkpoint(self._state(tag), path)

        threads = [
            threading.Thread(target=writer, args=(tag,)) for tag in (1, 2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        self._assert_single_writer(path)
        leftovers = [f for f in os.listdir(tmp_path) if ".tmp." in f]
        assert leftovers == []


class TestPartialLoadReporting:
    """Damage to one entry loses that entry, never the file (PR 4 satellite)."""

    @staticmethod
    def _two_entry_state():
        return {
            "first": np.arange(6, dtype=np.float32),
            "second": np.arange(6, 12, dtype=np.float32),
        }

    def test_mid_write_truncation_reports_the_tail(self, tmp_path):
        path = tmp_path / "cut.lv265"
        save_checkpoint(self._two_entry_state(), str(path))
        blob = path.read_bytes()
        path.write_bytes(blob[:-10])  # entry "second" is cut mid-payload

        with pytest.raises(ValueError):
            load_checkpoint(str(path))  # strict load refuses

        state, report = load_checkpoint_with_report(str(path))
        assert not report.clean
        assert "first" in state
        assert "second" not in state
        assert any("truncated" in reason for _, reason in report.skipped)
        assert "skipped" in report.summary()

    def test_corrupt_entry_is_skipped_and_named(self, tmp_path):
        path = tmp_path / "flip.lv265"
        save_checkpoint(self._two_entry_state(), str(path))
        blob = bytearray(path.read_bytes())
        blob[-3] ^= 0xFF  # inside the last entry's payload
        path.write_bytes(bytes(blob))

        state, report = load_checkpoint_with_report(str(path))
        assert "first" in state
        assert "second" not in state
        assert ("second", "checksum mismatch") in report.skipped
        assert report.loaded == ["first"]
