"""Trace-context propagation and the cross-worker delta protocol.

Pins the merge semantics documented in
``repro/telemetry/propagate.py``: counters add, histograms combine,
spans reparent under the dispatch site, events rebase onto the parent
clock, and every delta that cannot be recovered is counted in
``telemetry.worker_deltas_lost``.
"""

import pytest

import repro.telemetry as telemetry
from repro.parallel import ParallelConfig, parallel_map
from repro.telemetry import core
from repro.telemetry.core import MAX_TRACE_EVENTS, Registry
from repro.telemetry.propagate import (
    DELTA_VERSION,
    TracedTask,
    count_lost_deltas,
    current_trace,
    merge_delta,
    mint_trace,
    snapshot_delta,
    trace_scope,
)


from contextlib import contextmanager


@contextmanager
def _use(registry):
    """Install ``registry`` on this thread for the block (tests only)."""
    previous = core.current()
    core._local.registry = registry
    try:
        yield registry
    finally:
        core._local.registry = previous


def _traced_work(x):
    """Module-level so process pools can pickle it by reference."""
    telemetry.count("worker.items")
    telemetry.observe("worker.value", float(x))
    with telemetry.span("worker.body"):
        pass
    return x * 2


def _boom(x):
    if x == 0:
        raise RuntimeError("injected")
    telemetry.count("worker.items")
    return x


class TestTraceContext:
    def test_mint_is_unique_and_labelled(self):
        a, b = mint_trace("req"), mint_trace("req")
        assert a.trace_id != b.trace_id
        assert a.trace_id.startswith("req-")
        assert mint_trace("enc", budget_s=1.5).budget_s == 1.5

    def test_scope_sets_and_restores(self):
        with telemetry.session():
            assert current_trace() is None
            outer, inner = mint_trace("outer"), mint_trace("inner")
            with trace_scope(outer):
                assert current_trace() is outer
                with trace_scope(inner):
                    assert current_trace() is inner
                assert current_trace() is outer
            assert current_trace() is None

    def test_scope_noop_without_telemetry(self):
        assert core.current() is None
        with trace_scope(mint_trace()) as ctx:
            assert ctx is not None
        assert current_trace() is None

    def test_span_events_tagged_with_trace_id(self):
        with telemetry.session(trace=True) as registry:
            ctx = mint_trace("tagged")
            with trace_scope(ctx):
                with telemetry.span("inside"):
                    pass
            with telemetry.span("outside"):
                pass
        tagged = [e for e in registry.events
                  if e["args"].get("trace") == ctx.trace_id]
        assert len(tagged) == 1
        assert tagged[0]["args"]["path"] == "inside"

    def test_context_is_picklable(self):
        import pickle

        ctx = mint_trace("wire", budget_s=0.25)
        assert pickle.loads(pickle.dumps(ctx)) == ctx


class TestDeltaMerge:
    def _child_delta(self, trace=False):
        child = Registry(trace=trace)
        child.count("hits", 3)
        child.observe("lat", 0.5)
        child.observe("lat", 1.5)
        stat = child.spans.setdefault("frames.encode", core.SpanStat())
        stat.calls, stat.total_s = 2, 0.1
        return snapshot_delta(child)

    def test_snapshot_shape(self):
        delta = self._child_delta()
        assert delta["v"] == DELTA_VERSION
        assert delta["counters"] == {"hits": 3}
        assert delta["histograms"]["lat"] == {
            "count": 2, "total": 2.0, "min": 0.5, "max": 1.5,
        }
        assert delta["spans"]["frames.encode"] == {
            "calls": 2, "total_s": 0.1,
        }

    def test_counters_add(self):
        parent = Registry()
        parent.count("hits", 10)
        merge_delta(parent, self._child_delta())
        assert parent.counters["hits"] == 13
        assert parent.counters["telemetry.worker_deltas_merged"] == 1

    def test_histograms_combine(self):
        parent = Registry()
        parent.observe("lat", 1.0)
        merge_delta(parent, self._child_delta())
        hist = parent.histograms["lat"]
        assert hist.count == 3
        assert hist.total == pytest.approx(3.0)
        assert hist.min == 0.5 and hist.max == 1.5

    def test_spans_reparent_under_dispatch_site(self):
        parent = Registry()
        merge_delta(parent, self._child_delta(), under="serving.encode/fanout")
        assert parent.spans["serving.encode/fanout/frames.encode"].calls == 2
        # Merging a second sibling aggregates like same-path spans.
        merge_delta(parent, self._child_delta(), under="serving.encode/fanout")
        assert parent.spans["serving.encode/fanout/frames.encode"].calls == 4

    def test_events_rebased_and_tagged(self):
        child = Registry(trace=True)
        with _use(child):
            with telemetry.span("deep"):
                pass
        delta = snapshot_delta(child)
        parent = Registry(trace=True)
        parent.start = child.start - 2.0  # parent clock began 2s earlier
        merge_delta(parent, delta, under="site", trace_id="t-1")
        event = parent.events[0]
        assert event["args"]["path"] == "site/deep"
        assert event["args"]["trace"] == "t-1"
        assert event["ts"] >= 2e6  # rebased onto the parent origin

    def test_event_cap_counts_dropped(self):
        child = Registry(trace=True)
        with _use(child):
            with telemetry.span("one"):
                pass
        delta = snapshot_delta(child)
        parent = Registry(trace=True)
        parent.events.extend({"ts": 0.0, "args": {}}
                             for _ in range(MAX_TRACE_EVENTS))
        merge_delta(parent, delta)
        assert len(parent.events) == MAX_TRACE_EVENTS
        assert parent.dropped_events == 1

    def test_lost_delta_accounting(self):
        parent = Registry()
        count_lost_deltas(parent, 2)
        assert parent.counters["telemetry.worker_deltas_lost"] == 2
        count_lost_deltas(parent, 0)
        assert parent.counters["telemetry.worker_deltas_lost"] == 2
        count_lost_deltas(None, 5)  # no registry: must not raise


class TestTracedTask:
    def test_runs_under_fresh_registry_and_restores(self):
        with telemetry.session() as registry:
            outcome = TracedTask(_traced_work)(21)
            assert core.current() is registry
        assert outcome.result == 42
        assert outcome.error is None
        assert outcome.delta["counters"]["worker.items"] == 1
        # The child's counters never leaked into the dispatcher.
        assert "worker.items" not in registry.counters

    def test_capture_error_ships_delta(self):
        outcome = TracedTask(_boom, capture_error=True)(0)
        assert isinstance(outcome.error, RuntimeError)
        assert outcome.result is None
        assert outcome.delta["v"] == DELTA_VERSION

    def test_uncaptured_error_propagates(self):
        with pytest.raises(RuntimeError):
            TracedTask(_boom)(0)

    def test_root_span_wraps_the_call(self):
        outcome = TracedTask(_traced_work, root="attempt[3]")(1)
        assert outcome.delta["spans"]["attempt[3]"]["calls"] == 1
        assert outcome.delta["spans"]["attempt[3]/worker.body"]["calls"] == 1

    def test_trace_context_visible_in_worker(self):
        ctx = mint_trace("task")
        seen = []

        def probe(_):
            seen.append(current_trace())
            return None

        TracedTask(probe, ctx=ctx)(0)
        assert seen == [ctx]


class TestPoolRoundTrip:
    def test_thread_pool_deltas_merge(self):
        cfg = ParallelConfig(workers=2, executor="thread")
        with telemetry.session() as registry:
            results = parallel_map(_traced_work, [1, 2, 3], cfg, label="t")
        assert results == [2, 4, 6]
        assert registry.counters["worker.items"] == 3
        assert registry.counters["telemetry.worker_deltas_merged"] == 3
        assert registry.histograms["worker.value"].count == 3
        # Worker spans landed under the dispatch span.
        assert registry.spans["parallel.t/worker.body"].calls == 3

    def test_process_pool_delta_round_trip(self):
        cfg = ParallelConfig(workers=2, executor="process")
        with telemetry.session(trace=True) as registry:
            ctx = mint_trace("proc")
            with trace_scope(ctx):
                results = parallel_map(_traced_work, [5, 6], cfg, label="p")
        assert results == [10, 12]
        assert registry.counters["worker.items"] == 2
        assert registry.counters["telemetry.worker_deltas_merged"] == 2
        worker_events = [
            e for e in registry.events
            if e["args"].get("path", "").endswith("worker.body")
        ]
        assert worker_events, "worker-side span events must merge back"
        assert all(e["args"]["trace"] == ctx.trace_id for e in worker_events)

    def test_failed_item_deltas_counted_lost(self):
        cfg = ParallelConfig(workers=2, executor="thread")
        with telemetry.session() as registry:
            with pytest.raises(RuntimeError):
                parallel_map(_boom, [0, 1, 2], cfg, label="fail")
        # Item 0 raised while draining: nothing was merged, all three
        # in-flight deltas are unrecoverable and say so.
        assert registry.counters["telemetry.worker_deltas_lost"] == 3
        assert "telemetry.worker_deltas_merged" not in registry.counters

    def test_disabled_telemetry_stays_unwrapped(self):
        cfg = ParallelConfig(workers=2, executor="thread")
        assert core.current() is None
        assert parallel_map(_traced_work, [1, 2], cfg) == [2, 4]
