"""Tests for the tensor-statistics diagnostics."""

import numpy as np
import pytest

from repro.analysis import (
    channel_structure_score,
    outlier_ratio,
    rate_distortion_sweep,
    tensor_entropy_bits,
)
from repro.analysis.statistics import profile_tensor
from repro.models.synthetic_weights import activation_like, weight_like


class TestEntropy:
    def test_uniform_is_8_bits(self):
        values = np.linspace(-1, 1, 256 * 40)
        assert tensor_entropy_bits(values) == pytest.approx(8.0, abs=0.05)

    def test_gaussian_below_8_bits(self):
        rng = np.random.default_rng(0)
        assert tensor_entropy_bits(rng.normal(0, 1, 50_000)) < 7.6

    def test_constant_is_zero(self):
        assert tensor_entropy_bits(np.full(100, 3.0)) == 0.0

    def test_outliers_concentrate_codes(self):
        """Min-max with huge outliers squeezes the centre into few codes."""
        rng = np.random.default_rng(1)
        values = rng.normal(0, 0.01, 10_000)
        spiked = values.copy()
        spiked[0] = 5.0
        assert tensor_entropy_bits(spiked) < tensor_entropy_bits(values)


class TestOutliers:
    def test_pure_gaussian_near_expected(self):
        rng = np.random.default_rng(2)
        ratio = outlier_ratio(rng.normal(0, 1, 200_000), sigma=4.0)
        assert ratio == pytest.approx(6.3e-5, abs=8e-5)

    def test_weight_like_has_more(self):
        w = weight_like(256, 256, outlier_scale=30.0, outlier_fraction=1e-3, seed=0)
        rng = np.random.default_rng(3)
        gaussian = rng.normal(0, np.std(w), w.size)
        assert outlier_ratio(w) > outlier_ratio(gaussian)


class TestChannelStructure:
    def test_structured_beats_iid(self):
        rng = np.random.default_rng(4)
        iid = rng.normal(0, 1, (128, 128))
        structured = weight_like(128, 128, seed=5).astype(np.float64)
        assert channel_structure_score(structured) > channel_structure_score(iid)

    def test_pure_stripes_score_high(self):
        stripes = np.tile(np.arange(64, dtype=np.float64), (64, 1))
        assert channel_structure_score(stripes) > 0.9

    def test_constant_scores_zero(self):
        assert channel_structure_score(np.ones((8, 8))) == 0.0

    def test_3d_input_handled(self):
        acts = activation_like(32, 64, seed=6).reshape(2, 16, 64)
        assert 0.0 <= channel_structure_score(acts) <= 1.0


class TestRateDistortion:
    def test_sweep_is_monotone(self):
        w = weight_like(96, 96, seed=7)
        points = rate_distortion_sweep(w, qps=(8, 20, 32))
        bits = [p[1] for p in points]
        mses = [p[2] for p in points]
        assert bits[0] > bits[1] > bits[2]
        assert mses[0] < mses[1] < mses[2]

    def test_profile_tensor_keys(self):
        summary = profile_tensor(weight_like(32, 32, seed=8))
        assert set(summary) == {"entropy_bits", "outlier_ratio", "channel_structure"}
