"""Hedged requests (satellite 3): fire-after-delay, first-success-wins,
loser accounting, and the typed contract under injected stragglers."""

import random
import time

import numpy as np

from repro.cluster.chaos import CLUSTER_TYPED_ERRORS
from repro.cluster.router import ClusterConfig, ClusterRouter
from repro.serving.service import ServeResponse
from repro.serving.slo import _nearest_rank

TENSOR = np.zeros((8, 8), dtype=np.float32)


class FakeShard:
    """Minimal scriptable shard (see test_cluster_router for the full one)."""

    def __init__(self, shard_id, delay_s=0.0):
        self.shard_id = shard_id
        self.delay_s = delay_s
        self.calls = 0

    def _answer(self, kind):
        self.calls += 1
        if self.delay_s:
            time.sleep(self.delay_s)
        return ServeResponse(
            ok=True, kind=kind, value=self.shard_id.encode(), rung="fake"
        )

    def encode(self, tensor, qp=None, deadline_s=None,
               fault_gate=None, trace_ctx=None):
        return self._answer("encode")

    def decode(self, blob, deadline_s=None, fault_gate=None, trace_ctx=None):
        return self._answer("decode")

    def probe(self, deadline_s, trace_ctx=None):
        return self._answer("probe")

    def stats(self):
        return {"shard": self.shard_id}


def make_router(delay_a=0.0, delay_b=0.0, **overrides):
    defaults = dict(
        replication=2, hedge=True, hedge_delay_s=0.06, deadline_s=3.0,
    )
    defaults.update(overrides)
    return ClusterRouter(
        ClusterConfig(**defaults),
        shards=[FakeShard("a", delay_a), FakeShard("b", delay_b)],
    )


def key_with_primary(router, shard_id):
    for index in range(2048):
        key = f"k{index}"
        if router.ring.replicas(key, 2)[0] == shard_id:
            return key
    raise AssertionError(f"no key routes to {shard_id} first")


def wait_until(predicate, timeout_s=3.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestHedgeFiring:
    def test_fast_primary_never_hedges(self):
        with make_router(hedge_delay_s=0.25) as router:
            key = key_with_primary(router, "a")
            for _ in range(5):
                response = router.encode(TENSOR, key)
                assert response.ok and not response.hedged
            assert router.counters["hedges"] == 0
            assert router.shard("b").calls == 0

    def test_backup_fires_only_after_the_delay(self):
        with make_router(delay_a=0.7, hedge_delay_s=0.1) as router:
            key = key_with_primary(router, "a")
            started = time.perf_counter()
            response = router.encode(TENSOR, key)
            assert response.ok and response.hedged
            # The backup cannot have answered before the hedge delay
            # elapsed, so end-to-end latency is bounded below by it.
            assert time.perf_counter() - started >= 0.1
            assert router.counters["hedges"] == 1

    def test_hedge_disabled_never_fires(self):
        with make_router(delay_a=0.3, hedge=False) as router:
            key = key_with_primary(router, "a")
            response = router.encode(TENSOR, key)
            assert response.ok and not response.hedged
            assert router.counters["hedges"] == 0
            assert router.shard("b").calls == 0


class TestFirstSuccessWins:
    def test_fast_backup_beats_slow_primary(self):
        with make_router(delay_a=0.8) as router:
            key = key_with_primary(router, "a")
            response = router.encode(TENSOR, key)
            assert response.ok
            assert response.shard == "b" and response.hedge_won
            assert response.value == b"b"
            # Well under the primary's 0.8s stall.
            assert response.latency_s < 0.6
            assert router.counters["hedge_wins"] == 1

    def test_primary_win_keeps_hedged_flag_without_hedge_won(self):
        # Backup is much slower than the primary: the hedge fires but
        # loses, and the response says so.
        with make_router(delay_a=0.15, delay_b=0.8,
                         hedge_delay_s=0.03) as router:
            key = key_with_primary(router, "a")
            response = router.encode(TENSOR, key)
            assert response.ok and response.shard == "a"
            assert response.hedged and not response.hedge_won
            assert router.counters["hedge_wins"] == 0

    def test_loser_is_discarded_and_counted(self):
        with make_router(delay_a=0.4) as router:
            key = key_with_primary(router, "a")
            response = router.encode(TENSOR, key)
            assert response.hedge_won
            # The slow primary finishes after the commit; its result is
            # dropped at the commit cell and accounted, never surfaced.
            assert wait_until(
                lambda: router.counters["losers_discarded"] >= 1
            )
            assert router.counters["duplicate_results_dropped"] >= 1


class TestDerivedDelay:
    def test_initial_delay_until_enough_samples(self):
        with make_router(hedge_delay_s=None,
                         hedge_initial_delay_s=0.07) as router:
            assert router._hedge_delay() == 0.07

    def test_delay_tracks_the_configured_quantile(self):
        with make_router(hedge_delay_s=None) as router:
            samples = [0.01 + 0.001 * i for i in range(100)]
            router._latencies.extend(samples)
            expected = _nearest_rank(sorted(samples), 95.0)
            assert abs(router._hedge_delay() - expected) < 1e-12

    def test_delay_floors_at_min_delay(self):
        with make_router(hedge_delay_s=None,
                         hedge_min_delay_s=0.02) as router:
            router._latencies.extend([0.001] * 100)
            assert router._hedge_delay() == 0.02


class TestHedgeBudget:
    def test_zero_budget_denies_every_hedge(self):
        with make_router(delay_a=0.3, hedge_delay_s=0.05,
                         hedge_budget=0.0, hedge_budget_burst=0) as router:
            key = key_with_primary(router, "a")
            response = router.encode(TENSOR, key)
            # The slow primary still answers; the hedge was denied, not
            # the request.
            assert response.ok and not response.hedged
            assert router.counters["hedges"] == 0
            assert router.counters["hedges_denied_budget"] >= 1
            assert router.shard("b").calls == 0

    def test_burst_allowance_then_denial(self):
        with make_router(delay_a=0.2, hedge_delay_s=0.03,
                         hedge_budget=0.0, hedge_budget_burst=2) as router:
            key = key_with_primary(router, "a")
            for _ in range(4):
                assert router.encode(TENSOR, key).ok
            # Exactly the burst allowance fires; the rest are denied so
            # a storm cannot amplify load past the budget.
            assert router.counters["hedges"] == 2
            assert router.counters["hedges_denied_budget"] >= 2

    def test_budget_scales_with_request_count(self):
        with make_router(delay_a=0.0, hedge_budget=0.5,
                         hedge_budget_burst=0) as router:
            key = key_with_primary(router, "a")
            for _ in range(20):
                assert router.encode(TENSOR, key).ok
            router.shard("a").delay_s = 0.2
            response = router.encode(TENSOR, key)
            # 0 hedges so far against a budget of 0.5 * 21: allowed.
            assert response.ok and response.hedged
            assert router.counters["hedges"] == 1
            assert router.counters["hedges_denied_budget"] == 0


class TestContractUnderStragglers:
    def test_every_response_ok_or_typed(self):
        rng = random.Random(7)
        with make_router(hedge_delay_s=0.05, deadline_s=1.5) as router:
            shards = [router.shard("a"), router.shard("b")]

            responses = []
            for index in range(40):
                # A third of requests hit a straggling shard; the
                # straggle moves between shards so hedges matter.
                for shard in shards:
                    shard.delay_s = 0.0
                if rng.random() < 0.35:
                    rng.choice(shards).delay_s = 0.25
                responses.append(router.encode(TENSOR, f"k{index}"))
            for response in responses:
                assert response.ok or isinstance(
                    response.error, CLUSTER_TYPED_ERRORS
                )
            # Exactly one commit per request, no silent duplicates.
            assert router.counters["requests"] == len(responses)
            assert router.counters["hedges"] >= 1
