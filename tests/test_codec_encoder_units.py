"""Unit tests for encoder internals: dithering, padding, configuration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.encoder import (
    EncodeResult,
    EncoderConfig,
    QpDither,
    pack_header,
    pad_frame,
    unpack_header,
)
from repro.codec.profiles import H264_PROFILE


class TestQpDither:
    def test_integer_qp_never_bumps(self):
        dither = QpDither(20, 0)
        assert [dither.next() for _ in range(50)] == [20] * 50

    def test_half_qp_alternates(self):
        dither = QpDither(20, 128)
        values = [dither.next() for _ in range(100)]
        assert abs(np.mean(values) - 20.5) < 0.02
        assert set(values) == {20, 21}

    @pytest.mark.parametrize("frac", [32, 64, 192, 240])
    def test_average_matches_fraction(self, frac):
        dither = QpDither(10, frac)
        values = [dither.next() for _ in range(512)]
        assert np.mean(values) == pytest.approx(10 + frac / 256.0, abs=0.02)

    def test_clamped_at_max(self):
        dither = QpDither(51, 255)
        assert max(dither.next() for _ in range(20)) <= 51

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=255))
    def test_property_mean(self, base, frac):
        dither = QpDither(base, frac)
        values = [dither.next() for _ in range(256)]
        assert np.mean(values) == pytest.approx(base + frac / 256.0, abs=0.05)


class TestPadFrame:
    def test_no_padding_when_aligned(self):
        frame = np.zeros((32, 64), dtype=np.uint8)
        assert pad_frame(frame, 32) is frame

    def test_padding_dimensions(self):
        frame = np.zeros((30, 45), dtype=np.uint8)
        padded = pad_frame(frame, 16)
        assert padded.shape == (32, 48)

    def test_padding_replicates_edges(self):
        frame = np.arange(9, dtype=np.uint8).reshape(3, 3)
        padded = pad_frame(frame, 4)
        assert padded[3, 0] == frame[2, 0]  # bottom row replicated
        assert padded[0, 3] == frame[0, 2]  # right column replicated


class TestConfig:
    def test_flags_roundtrip_through_header(self):
        config = EncoderConfig(
            use_intra=False, use_transform=False, use_partition=False, use_inter=True
        )
        parsed = unpack_header(pack_header(config, 10, 10, 1))
        assert not parsed["use_intra"]
        assert not parsed["use_transform"]
        assert not parsed["use_partition"]
        assert parsed["use_inter"]

    def test_header_stores_fixed_cu_when_unpartitioned(self):
        config = EncoderConfig(use_partition=False, fixed_cu_size=16)
        parsed = unpack_header(pack_header(config, 10, 10, 1))
        assert parsed["ctu"] == 16 and parsed["min_cu"] == 16

    def test_header_stores_profile_geometry(self):
        config = EncoderConfig(profile=H264_PROFILE)
        parsed = unpack_header(pack_header(config, 10, 10, 1))
        assert parsed["ctu"] == 16 and parsed["min_cu"] == 4

    def test_encode_result_bits_per_value(self):
        result = EncodeResult(data=b"x" * 100, num_values=400, mse=0.0)
        assert result.bits_per_value == pytest.approx(2.0)

    def test_fractional_qp_rounding_in_header(self):
        parsed = unpack_header(pack_header(EncoderConfig(qp=19.999), 4, 4, 1))
        assert parsed["qp_base"] == 20 and parsed["qp_frac"] == 0
