"""Tests for the llm265 command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.models.synthetic_weights import weight_like


@pytest.fixture()
def tensor_file(tmp_path):
    path = tmp_path / "weight.npy"
    np.save(path, weight_like(64, 64, seed=0))
    return str(path)


class TestCLI:
    def test_compress_decompress_roundtrip(self, tensor_file, tmp_path, capsys):
        blob = str(tmp_path / "weight.lv265")
        out = str(tmp_path / "restored.npy")
        assert main(["compress", tensor_file, blob, "--bits", "3.0"]) == 0
        assert main(["decompress", blob, out]) == 0
        original = np.load(tensor_file)
        restored = np.load(out)
        assert restored.shape == original.shape
        assert np.mean((restored - original) ** 2) < np.var(original)
        stdout = capsys.readouterr().out
        assert "bits/value" in stdout

    def test_compress_with_qp(self, tensor_file, tmp_path):
        blob = str(tmp_path / "w.lv265")
        assert main(["compress", tensor_file, blob, "--qp", "20"]) == 0

    def test_compress_with_mse(self, tensor_file, tmp_path):
        blob = str(tmp_path / "w.lv265")
        assert main(["compress", tensor_file, blob, "--mse", "1e-4"]) == 0

    def test_compress_alternate_codec(self, tensor_file, tmp_path):
        blob = str(tmp_path / "w.lv265")
        assert main(
            ["compress", tensor_file, blob, "--qp", "20", "--codec", "h264"]
        ) == 0
        out = str(tmp_path / "r.npy")
        assert main(["decompress", blob, out]) == 0

    def test_info(self, tensor_file, tmp_path, capsys):
        blob = str(tmp_path / "w.lv265")
        main(["compress", tensor_file, blob, "--bits", "2.5"])
        capsys.readouterr()
        assert main(["info", blob]) == 0
        stdout = capsys.readouterr().out
        assert "shape" in stdout and "h265" in stdout

    def test_profile(self, tensor_file, capsys):
        assert main(["profile", tensor_file]) == 0
        stdout = capsys.readouterr().out
        assert "entropy" in stdout and "channel structure" in stdout

    def test_sweep(self, tensor_file, capsys):
        assert main(["sweep", tensor_file, "--qps", "16,32"]) == 0
        stdout = capsys.readouterr().out
        assert "bits/value" in stdout
        assert len(stdout.strip().splitlines()) == 3

    def test_conflicting_rate_targets_rejected(self, tensor_file, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "compress",
                    tensor_file,
                    str(tmp_path / "w.lv265"),
                    "--bits",
                    "3",
                    "--qp",
                    "20",
                ]
            )

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
