"""Supervision tests: crash detection, hang detection, pool restart,
re-dispatch, and seeded backoff determinism."""

import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.parallel import BrokenPoolError, ParallelConfig, WorkerTimeoutError
from repro.resilience.deadline import Deadline, DeadlineExceeded
from repro.resilience.faults import RetryPolicy
from repro.serving.supervisor import RetriesExhausted, Supervisor, WorkerCrashed

FAST_RETRY = RetryPolicy(max_retries=3, backoff_base_s=0.001)


def _sup(**kwargs):
    kwargs.setdefault("retry", FAST_RETRY)
    return Supervisor(**kwargs)


class FlakyWork:
    """Fails ``failures`` times, then succeeds."""

    def __init__(self, failures, exc=RuntimeError("transient")):
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def __call__(self, deadline):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return "done"


class TestRun:
    def test_success_first_try(self):
        result, attempts = _sup().run(lambda deadline: 42)
        assert (result, attempts) == (42, 1)

    def test_transient_failure_retried(self):
        work = FlakyWork(failures=2)
        result, attempts = _sup().run(work)
        assert result == "done"
        assert attempts == 3

    def test_simulated_crash_is_retryable(self):
        work = FlakyWork(failures=1, exc=WorkerCrashed("boom"))
        result, attempts = _sup().run(work)
        assert result == "done"
        assert attempts == 2

    def test_worker_crashed_is_broken_pool_error(self):
        # Simulated and real crashes must take the same recovery paths.
        assert issubclass(WorkerCrashed, BrokenPoolError)

    def test_persistent_failure_exhausts_retries(self):
        work = FlakyWork(failures=99)
        supervisor = _sup()
        with pytest.raises(RetriesExhausted) as err:
            supervisor.run(work)
        assert err.value.attempts == FAST_RETRY.max_retries + 1
        assert isinstance(err.value.last_error, RuntimeError)

    def test_non_retryable_propagates_immediately(self):
        work = FlakyWork(failures=99, exc=ValueError("bad input"))
        with pytest.raises(ValueError, match="bad input"):
            _sup().run(work)
        assert work.calls == 1

    def test_hang_detected_by_attempt_timeout(self):
        calls = []

        def hangs_once(deadline):
            calls.append(time.monotonic())
            if len(calls) == 1:
                time.sleep(1.0)  # the supervisor must not wait this long
            return "recovered"

        started = time.perf_counter()
        result, attempts = _sup().run(hangs_once, attempt_timeout_s=0.1)
        assert result == "recovered"
        assert attempts == 2
        assert time.perf_counter() - started < 1.0

    def test_abandoned_attempt_gets_expiring_child_deadline(self):
        seen = []

        def work(deadline):
            seen.append(deadline)
            if len(seen) == 1:
                time.sleep(0.3)
            return "ok"

        deadline = Deadline.after(10.0)
        _sup().run(work, attempt_timeout_s=0.1, deadline=deadline)
        # The abandoned first attempt held a child deadline that expired
        # with the attempt timeout, not the 10s request budget.
        assert seen[0].expired()
        assert not deadline.expired()

    def test_request_deadline_bounds_everything(self):
        def always_hangs(deadline):
            time.sleep(0.2)
            raise RuntimeError("never succeeds")

        with pytest.raises((DeadlineExceeded, RetriesExhausted)):
            _sup().run(
                always_hangs, attempt_timeout_s=0.05,
                deadline=Deadline.after(0.15),
            )

    def test_backoff_schedule_is_seeded(self):
        def schedule(seed):
            sleeps = []
            supervisor = Supervisor(
                retry=FAST_RETRY, seed=seed, sleep=sleeps.append
            )
            with pytest.raises(RetriesExhausted):
                supervisor.run(FlakyWork(failures=99))
            return sleeps

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)


def _kill_while_flagged(args):
    """SIGKILL the worker for item 13 while the flag file exists.

    The flag path rides inside the item (not the environment) so the
    behaviour is identical whether the shared process pool was forked
    before or after the test started.
    """
    item, flag = args
    if item == 13 and flag and os.path.exists(flag):
        os.remove(flag)  # next dispatch round survives
        os.kill(os.getpid(), signal.SIGKILL)
    return item * item


class TestMap:
    def test_ordered_results(self):
        config = ParallelConfig(workers=2, executor="thread")
        result = _sup().map(lambda x: x + 1, range(20), config)
        assert result == list(range(1, 21))

    def test_real_worker_kill_restart_and_redispatch(self, tmp_path):
        flag = tmp_path / "kill-once"
        flag.write_text("armed")
        supervisor = _sup()
        config = ParallelConfig(workers=2, executor="process")
        items = [(x, str(flag)) for x in range(24)]
        result = supervisor.map(_kill_while_flagged, items, config, label="kill")
        assert result == [x * x for x in range(24)]
        assert supervisor.restarts >= 1
        assert not flag.exists()

    def test_hung_worker_redispatch(self):
        state = {"armed": True}

        def slow_once(item):
            if item == 3 and state.pop("armed", False):
                time.sleep(1.0)
            return -item

        supervisor = _sup()
        config = ParallelConfig(workers=2, executor="thread")
        started = time.perf_counter()
        result = supervisor.map(
            slow_once, range(8), config, label="hang", timeout_s=0.1
        )
        assert result == [-x for x in range(8)]
        assert time.perf_counter() - started < 5.0
        assert supervisor.timeouts >= 1

    def test_item_exception_propagates(self):
        def bad(item):
            if item == 2:
                raise ValueError("item 2 is cursed")
            return item

        config = ParallelConfig(workers=2, executor="thread")
        with pytest.raises(ValueError, match="cursed"):
            _sup().map(bad, range(6), config)

    def test_exhaustion_raises_typed_error(self):
        def always_slow(item):
            time.sleep(0.5)
            return item

        supervisor = Supervisor(retry=RetryPolicy(max_retries=1,
                                                  backoff_base_s=0.001))
        config = ParallelConfig(workers=2, executor="thread")
        with pytest.raises(RetriesExhausted) as err:
            supervisor.map(always_slow, range(4), config, timeout_s=0.05)
        assert isinstance(err.value.last_error, WorkerTimeoutError)
