"""Integration tests: encoder -> bitstream -> decoder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.decoder import decode_frames
from repro.codec.encoder import (
    EncoderConfig,
    FrameEncoder,
    encode_frames,
    pack_header,
    unpack_header,
)
from repro.codec.profiles import AV1_PROFILE, H264_PROFILE, H265_PROFILE


def structured_image(size=64, seed=0):
    """Gradient + stripes + noise: the kind of structure weights show."""
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 1, size)
    img = (
        np.outer(np.ones(size), np.sin(x * 8) * 40)
        + np.outer(np.cos(x * 3) * 20, np.ones(size))
        + 128
        + rng.normal(0, 5, (size, size))
    )
    return np.clip(img, 0, 255).astype(np.uint8)


def decoded_mse(frames, result):
    decoded = decode_frames(result.data)
    total = sum(
        float(np.sum((d.astype(np.float64) - f.astype(np.float64)) ** 2))
        for d, f in zip(decoded, frames)
    )
    return total / sum(f.size for f in frames)


class TestHeader:
    def test_header_roundtrip(self):
        config = EncoderConfig(qp=27.5, use_inter=True)
        header = pack_header(config, 100, 60, 3)
        parsed = unpack_header(header)
        assert parsed["width"] == 100 and parsed["height"] == 60
        assert parsed["n_frames"] == 3
        assert parsed["use_inter"] and parsed["use_intra"]
        assert parsed["qp_base"] == 27 and parsed["qp_frac"] == 128

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            unpack_header(b"XXXX" + b"\x00" * 20)

    def test_short_stream_rejected(self):
        with pytest.raises(ValueError):
            unpack_header(b"LV")


class TestRoundtrip:
    @pytest.mark.parametrize("qp", [4, 16, 30, 44])
    def test_encoder_decoder_agree_on_mse(self, qp):
        img = structured_image()
        result = encode_frames([img], EncoderConfig(qp=qp))
        # Decoder output rounds to uint8; allow that half-LSB slack.
        assert decoded_mse([img], result) <= result.mse + 0.3

    def test_decoded_shape_matches_original(self):
        img = structured_image(48)[:40, :33]  # force padding
        result = encode_frames([img], EncoderConfig(qp=20))
        decoded = decode_frames(result.data)
        assert decoded[0].shape == (40, 33)

    def test_multi_frame_stream(self):
        frames = [structured_image(seed=s) for s in range(3)]
        result = encode_frames(frames, EncoderConfig(qp=16))
        decoded = decode_frames(result.data)
        assert len(decoded) == 3
        assert decoded_mse(frames, result) < 5.0

    def test_low_qp_is_near_lossless(self):
        img = structured_image()
        result = encode_frames([img], EncoderConfig(qp=0))
        assert decoded_mse([img], result) < 0.5

    def test_rate_decreases_with_qp(self):
        img = structured_image()
        rates = [
            encode_frames([img], EncoderConfig(qp=qp)).bits_per_value
            for qp in (8, 20, 32, 44)
        ]
        assert all(a > b for a, b in zip(rates, rates[1:]))

    def test_mse_increases_with_qp(self):
        img = structured_image()
        mses = [
            decoded_mse([img], encode_frames([img], EncoderConfig(qp=qp)))
            for qp in (4, 20, 36)
        ]
        assert mses[0] < mses[1] < mses[2]

    def test_fractional_qp_interpolates_rate(self):
        img = structured_image()
        r20 = encode_frames([img], EncoderConfig(qp=20.0)).bits_per_value
        r21 = encode_frames([img], EncoderConfig(qp=21.0)).bits_per_value
        rmid = encode_frames([img], EncoderConfig(qp=20.5)).bits_per_value
        assert r21 < rmid < r20

    @pytest.mark.parametrize(
        "profile", [H264_PROFILE, H265_PROFILE, AV1_PROFILE], ids=lambda p: p.name
    )
    def test_all_profiles_roundtrip(self, profile):
        img = structured_image(profile.ctu_size * 2)
        result = encode_frames([img], EncoderConfig(profile=profile, qp=20))
        assert decoded_mse([img], result) < 25.0

    def test_constant_frame_is_nearly_free(self):
        img = np.full((64, 64), 77, dtype=np.uint8)
        result = encode_frames([img], EncoderConfig(qp=20))
        assert result.bits_per_value < 0.1  # header + a handful of payload bytes
        assert decoded_mse([img], result) < 1.0

    def test_random_noise_is_incompressible(self):
        rng = np.random.default_rng(1)
        img = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        result = encode_frames([img], EncoderConfig(qp=0))
        assert result.bits_per_value > 6.0  # near the 8-bit entropy

    def test_empty_frames_rejected(self):
        with pytest.raises(ValueError):
            encode_frames([], EncoderConfig())

    def test_float_frames_rejected(self):
        with pytest.raises(ValueError):
            encode_frames([np.zeros((8, 8), dtype=np.float32)], EncoderConfig())

    def test_mismatched_shapes_rejected(self):
        frames = [np.zeros((8, 8), np.uint8), np.zeros((16, 16), np.uint8)]
        with pytest.raises(ValueError):
            encode_frames(frames, EncoderConfig())


class TestStageFlags:
    def test_no_intra_roundtrip(self):
        img = structured_image()
        config = EncoderConfig(qp=16, use_intra=False, use_partition=False)
        result = encode_frames([img], config)
        assert decoded_mse([img], result) < 10.0

    def test_no_transform_roundtrip(self):
        img = structured_image()
        config = EncoderConfig(qp=16, use_transform=False)
        result = encode_frames([img], config)
        assert decoded_mse([img], result) < 10.0

    def test_intra_beats_no_intra_on_structured_content(self):
        img = structured_image()
        full = encode_frames([img], EncoderConfig(qp=20))
        blind = encode_frames(
            [img], EncoderConfig(qp=20, use_intra=False, use_partition=False)
        )
        assert full.bits_per_value < blind.bits_per_value
        assert full.mse <= blind.mse * 1.5

    def test_inter_roundtrip_with_motion(self):
        base = structured_image(64)
        shifted = np.roll(base, 3, axis=1)
        config = EncoderConfig(qp=16, use_inter=True)
        result = encode_frames([base, shifted], config)
        decoded = decode_frames(result.data)
        assert len(decoded) == 2
        assert decoded_mse([base, shifted], result) < 6.0

    def test_inter_helps_on_static_video(self):
        base = structured_image(64)
        frames = [base, base, base]
        with_inter = encode_frames(frames, EncoderConfig(qp=16, use_inter=True))
        without = encode_frames(frames, EncoderConfig(qp=16, use_inter=False))
        assert with_inter.bits_per_value < without.bits_per_value


class TestDeterminism:
    def test_encoding_is_deterministic(self):
        img = structured_image()
        a = encode_frames([img], EncoderConfig(qp=22)).data
        b = encode_frames([img], EncoderConfig(qp=22)).data
        assert a == b

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.integers(0, 51))
    def test_property_roundtrip_random_images(self, seed, qp):
        rng = np.random.default_rng(seed)
        img = rng.integers(0, 256, (32, 32), dtype=np.uint8)
        result = encode_frames([img], EncoderConfig(qp=float(qp)))
        decoded = decode_frames(result.data)[0]
        assert decoded.shape == img.shape
        # Reconstruction error is bounded by the quantizer step size.
        from repro.codec.quantizer import qstep

        limit = (qstep(qp) / 2 + 1.5) ** 2 * 4 + 4
        mse = np.mean((decoded.astype(float) - img.astype(float)) ** 2)
        assert mse <= max(limit, result.mse * 1.2 + 1.0)
