"""Tests for FP <-> uint8 precision conversion."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.tensor.precision import (
    QuantizationGrid,
    dequantize_from_uint8,
    grid_for,
    quantize_to_uint8,
)


class TestGrid:
    def test_minmax_covers_range(self):
        values = np.array([-3.0, 0.0, 5.0])
        grid = grid_for(values)
        codes = grid.to_codes(values)
        assert codes[0] == 0 and codes[-1] == 255

    def test_constant_tensor(self):
        values = np.full((4, 4), 2.5)
        codes, grid = quantize_to_uint8(values)
        assert np.all(codes == 0)
        assert np.allclose(dequantize_from_uint8(codes, grid), 2.5)

    def test_empty_tensor(self):
        codes, grid = quantize_to_uint8(np.array([]))
        assert codes.size == 0
        assert grid.scale == 0.0

    def test_roundtrip_error_within_half_step(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0, 1, (64, 64))
        codes, grid = quantize_to_uint8(values)
        restored = dequantize_from_uint8(codes, grid)
        assert np.max(np.abs(restored - values)) <= grid.scale / 2 + 1e-12

    def test_step_mse_predicts_measured_mse(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(-1, 1, 100_000)
        codes, grid = quantize_to_uint8(values)
        measured = np.mean((dequantize_from_uint8(codes, grid) - values) ** 2)
        assert measured == pytest.approx(grid.step_mse, rel=0.1)

    def test_codes_are_uint8(self):
        codes, _ = quantize_to_uint8(np.array([1.0, 2.0]))
        assert codes.dtype == np.uint8

    def test_outliers_are_preserved_not_clipped(self):
        values = np.concatenate([np.random.default_rng(2).normal(0, 0.01, 1000), [5.0]])
        codes, grid = quantize_to_uint8(values)
        restored = dequantize_from_uint8(codes, grid)
        assert restored[-1] == pytest.approx(5.0, abs=grid.scale)

    @settings(max_examples=40, deadline=None)
    @given(
        arrays(
            np.float64,
            st.integers(min_value=1, max_value=64),
            elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        )
    )
    def test_property_error_bound(self, values):
        codes, grid = quantize_to_uint8(values)
        restored = dequantize_from_uint8(codes, grid)
        assert np.max(np.abs(restored - values)) <= grid.scale / 2 + 1e-9
