"""Flight recorder ring, postmortem bundles, and the chaos drill."""

import json
import os

import pytest

import repro.telemetry as telemetry
from repro.telemetry.flightrecorder import (
    BUNDLE_SCHEMA,
    FlightRecorder,
    dump_bundle,
    get_recorder,
    record,
    set_recorder,
)


@pytest.fixture
def recorder():
    """A fresh process-wide recorder, restored after the test."""
    fresh = FlightRecorder(capacity=16)
    previous = set_recorder(fresh)
    try:
        yield fresh
    finally:
        set_recorder(previous)


class TestRing:
    def test_records_in_order_with_sequence(self, recorder):
        record("a", x=1)
        record("b", x=2)
        events = recorder.snapshot()
        assert [e["kind"] for e in events] == ["a", "b"]
        assert [e["seq"] for e in events] == [1, 2]
        assert events[0]["fields"] == {"x": 1}
        assert events[0]["t_mono"] <= events[1]["t_mono"]

    def test_ring_evicts_oldest_past_capacity(self, recorder):
        for i in range(20):
            record("tick", i=i)
        events = recorder.snapshot()
        assert len(events) == 16
        assert events[0]["fields"]["i"] == 4  # 0..3 fell off
        stats = recorder.stats()
        assert stats == {
            "capacity": 16, "stored": 16,
            "total_recorded": 20, "evicted": 4,
        }

    def test_field_named_kind_does_not_collide(self, recorder):
        record("serving.request_failed", kind="encode")
        event = recorder.snapshot()[0]
        assert event["kind"] == "serving.request_failed"
        assert event["fields"]["kind"] == "encode"

    def test_clear_keeps_totals(self, recorder):
        record("x")
        recorder.clear()
        assert recorder.snapshot() == []
        assert recorder.stats()["total_recorded"] == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_default_recorder_always_installed(self):
        assert get_recorder() is not None


class TestBundle:
    def test_bundle_contents(self, recorder, tmp_path):
        record("breaker.trip", name="rung.turbo")
        with telemetry.session(trace=True) as registry:
            with telemetry.span("serving.encode"):
                telemetry.count("serving.requests")
            path = dump_bundle(
                str(tmp_path), reason="unit test!", registry=registry,
                seed=42, extra={"note": "hi"},
            )
        assert os.path.exists(path)
        bundle = json.loads(open(path).read())
        assert bundle["schema"] == BUNDLE_SCHEMA
        assert bundle["reason"] == "unit test!"
        assert bundle["seed"] == 42
        assert bundle["extra"] == {"note": "hi"}
        assert [e["kind"] for e in bundle["ring"]] == ["breaker.trip"]
        assert bundle["ring_stats"]["total_recorded"] == 1
        assert bundle["telemetry"]["counters"]["serving.requests"] == 1
        children = bundle["trace_tree"]["children"]
        assert children[0]["name"] == "serving.encode"
        assert children[0]["calls"] == 1

    def test_bundle_without_registry(self, recorder, tmp_path):
        record("solo")
        path = dump_bundle(str(tmp_path), reason="no-telemetry")
        bundle = json.loads(open(path).read())
        assert bundle["telemetry"] is None
        assert bundle["trace_tree"] is None
        assert len(bundle["ring"]) == 1

    def test_unserializable_fields_fall_back_to_repr(self, recorder, tmp_path):
        record("odd", payload=object())
        path = dump_bundle(str(tmp_path), reason="repr")
        bundle = json.loads(open(path).read())
        assert "object object" in bundle["ring"][0]["fields"]["payload"]


class TestChaosDrill:
    def test_forced_violation_writes_postmortem(self, recorder, tmp_path):
        from repro.serving.chaos import ChaosConfig, format_report, run_chaos

        report = run_chaos(ChaosConfig(
            requests=6, force_violation=True, postmortem_dir=str(tmp_path),
        ))
        assert not report["invariant"]["passed"]
        path = report["postmortem"]
        assert path and os.path.exists(path)
        bundle = json.loads(open(path).read())
        assert bundle["schema"] == BUNDLE_SCHEMA
        assert bundle["seed"] == report["config"]["seed"]
        assert bundle["extra"]["invariant"]["violations"]
        assert any(e["kind"] == "chaos.contract_violation"
                   for e in bundle["ring"])
        # The trace tree covers the soak's requests (telemetry was
        # opened by run_chaos itself).
        tree_names = {node["name"]
                      for node in bundle["trace_tree"]["children"]}
        assert any(name.startswith("serving.") for name in tree_names)
        assert path in format_report(report)

    def test_clean_soak_writes_nothing(self, recorder, tmp_path):
        from repro.serving.chaos import ChaosConfig, run_chaos

        report = run_chaos(ChaosConfig(
            requests=6, crash_prob=0.0, hang_prob=0.0, raise_prob=0.0,
            straggler_prob=0.0, bit_flip_prob=0.0, truncate_prob=0.0,
            postmortem_dir=str(tmp_path),
        ))
        assert report["invariant"]["passed"]
        assert report["postmortem"] is None
        assert list(tmp_path.iterdir()) == []


class TestServiceIntegration:
    def test_notable_serving_events_recorded(self, recorder):
        import numpy as np

        from repro.serving.service import CodecService, ServiceConfig

        service = CodecService(ServiceConfig(
            tile=32, max_inflight=1, max_queue=0, seed=0,
        ))
        tensor = np.zeros((32, 32), dtype=np.float32)
        service.broker.acquire()  # saturate so the next request sheds
        try:
            response = service.encode(tensor, qp=26.0)
        finally:
            service.broker.release()
        assert not response.ok
        kinds = [e["kind"] for e in recorder.snapshot()]
        assert "broker.shed" in kinds
        assert "serving.request_failed" in kinds
        failed = [e for e in recorder.snapshot()
                  if e["kind"] == "serving.request_failed"][-1]
        assert failed["fields"]["error_type"] == "Overloaded"
        assert failed["fields"]["trace"] == response.trace_id
