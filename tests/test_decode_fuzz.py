"""Differential fuzz: legacy vs. vectorized decode on damaged streams.

The vectorized decoder is only a valid substitute if it is
*indistinguishable* from the legacy decoder on hostile input, not just
on clean streams: same typed error (``CorruptStreamError`` /
``TruncatedStreamError`` / ...) in strict mode, and in concealment
mode the same frames and the same per-slice concealment report.  This
file drives both decoders over seeded bit-flips and truncations and
asserts exactly that, for the native scan kernel and the pure-Python
fallback alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.decoder import decode_frames, decode_frames_with_report
from repro.codec.encoder import EncoderConfig, FrameEncoder
from repro.codec.entropy import native
from repro.resilience.errors import TruncatedStreamError

_TRIALS = 40


def _stream(qp=24.0, seed=11, n=4, edge=64, use_inter=False):
    rng = np.random.default_rng(seed)
    base = np.linspace(40, 200, edge)[None, :] + np.linspace(-30, 30, edge)[:, None]
    frames = [
        np.clip(base + rng.normal(0, 25, (edge, edge)), 0, 255).astype(np.uint8)
        for _ in range(n)
    ]
    return FrameEncoder(EncoderConfig(qp=qp, use_inter=use_inter)).encode(frames).data


def _damage(data: bytes, rng: np.random.Generator) -> bytes:
    """Two thirds bit-flips, one third truncations -- like real rot."""
    if rng.random() < 2 / 3:
        buf = bytearray(data)
        for _ in range(int(rng.integers(1, 4))):
            buf[int(rng.integers(0, len(buf)))] ^= 1 << int(rng.integers(0, 8))
        return bytes(buf)
    return data[: int(rng.integers(1, len(data)))]


def _strict_outcome(data: bytes, decode: str):
    """(error type name | 'ok', frames) for a strict decode."""
    try:
        return "ok", decode_frames(data, decode=decode)
    except Exception as exc:  # noqa: BLE001 -- the *type* is the assertion
        return type(exc).__name__, None


@pytest.fixture(params=["native", "pure"])
def scan_mode(request, monkeypatch):
    if request.param == "native":
        if not native.available():
            pytest.skip("native scan kernel unavailable")
    else:
        monkeypatch.setattr(native, "available", lambda: False)
    return request.param


class TestDecodeFuzz:
    def test_strict_errors_match(self, scan_mode):
        data = _stream()
        rng = np.random.default_rng(0xFA57)
        for trial in range(_TRIALS):
            bad = _damage(data, rng)
            legacy_kind, legacy_frames = _strict_outcome(bad, "legacy")
            fast_kind, fast_frames = _strict_outcome(bad, "vectorized")
            assert fast_kind == legacy_kind, f"trial {trial}: {bad[:16].hex()}"
            if legacy_kind == "ok":
                for a, b in zip(legacy_frames, fast_frames):
                    np.testing.assert_array_equal(a, b)

    def test_conceal_reports_match(self, scan_mode):
        data = _stream(seed=29)
        rng = np.random.default_rng(0xC0DEC)
        concealed_any = False
        for trial in range(_TRIALS):
            bad = _damage(data, rng)
            legacy_frames, legacy_report = decode_frames_with_report(
                bad, decode="legacy"
            )
            fast_frames, fast_report = decode_frames_with_report(
                bad, decode="vectorized"
            )
            assert fast_report.total_slices == legacy_report.total_slices, (
                f"trial {trial}"
            )
            assert fast_report.concealed == legacy_report.concealed, f"trial {trial}"
            assert len(fast_frames) == len(legacy_frames)
            for a, b in zip(legacy_frames, fast_frames):
                np.testing.assert_array_equal(a, b)
            concealed_any = concealed_any or not legacy_report.clean
        assert concealed_any  # the fuzz actually exercised concealment

    def test_inter_streams_fuzz(self, scan_mode):
        data = _stream(seed=37, use_inter=True)
        rng = np.random.default_rng(0x1E7E4)
        for trial in range(_TRIALS // 2):
            bad = _damage(data, rng)
            legacy_kind, _ = _strict_outcome(bad, "legacy")
            fast_kind, _ = _strict_outcome(bad, "vectorized")
            assert fast_kind == legacy_kind, f"trial {trial}"

    def test_typed_errors_surface(self):
        data = _stream(seed=43)
        with pytest.raises(TruncatedStreamError):
            decode_frames(data[: len(data) // 3], decode="vectorized")
        # Empty and garbage inputs fail identically across paths.
        for bad in (b"", b"\x00" * 64):
            legacy_kind, _ = _strict_outcome(bad, "legacy")
            fast_kind, _ = _strict_outcome(bad, "vectorized")
            assert fast_kind == legacy_kind
