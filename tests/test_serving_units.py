"""Unit tests for the serving building blocks: deadline, broker,
circuit breaker, SLO tracker, and degradation ladder."""

import threading
import time

import pytest

from repro.resilience.deadline import Deadline, DeadlineExceeded, effective_timeout
from repro.serving.breaker import CircuitBreaker
from repro.serving.broker import Overloaded, RequestBroker
from repro.serving.ladder import DEFAULT_LADDER, DegradationLadder, Rung
from repro.serving.slo import OUTCOMES, SloTracker


class TestDeadline:
    def test_after_and_remaining(self):
        deadline = Deadline.after(10.0)
        assert 9.0 < deadline.remaining() <= 10.0
        assert not deadline.expired()
        deadline.check("stage")  # no raise

    def test_expired_check_raises_with_stage(self):
        deadline = Deadline.after(0.0)
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded, match="during encode"):
            deadline.check("encode")

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(-1.0)

    def test_child_never_exceeds_parent(self):
        parent = Deadline.after(0.05)
        child = parent.child(10.0)
        assert child.expires_at <= parent.expires_at
        tight = parent.child(0.001)
        assert tight.remaining() <= 0.002

    def test_deadline_exceeded_is_timeout_error(self):
        # Callers distinguishing timeouts from corruption rely on this.
        assert issubclass(DeadlineExceeded, TimeoutError)

    def test_effective_timeout_merging(self):
        assert effective_timeout(None, None) is None
        assert effective_timeout(None, 2.0) == 2.0
        deadline = Deadline.after(10.0)
        assert effective_timeout(deadline, None) <= 10.0
        assert effective_timeout(deadline, 0.5) == 0.5
        assert effective_timeout(Deadline.after(0.0), 5.0) == 0.0


class TestRequestBroker:
    def test_admits_up_to_max_inflight(self):
        broker = RequestBroker(max_inflight=2, max_queue=2)
        broker.acquire()
        broker.acquire()
        assert broker.inflight == 2
        broker.release()
        broker.release()
        assert broker.inflight == 0

    def test_sheds_when_queue_full(self):
        broker = RequestBroker(max_inflight=1, max_queue=0)
        broker.acquire()
        with pytest.raises(Overloaded) as err:
            broker.acquire()
        assert err.value.inflight == 1
        assert broker.stats()["shed"] == 1
        broker.release()

    def test_queued_caller_gets_slot_on_release(self):
        broker = RequestBroker(max_inflight=1, max_queue=1)
        broker.acquire()
        got_slot = threading.Event()

        def waiter():
            broker.acquire(Deadline.after(5.0))
            got_slot.set()
            broker.release()

        thread = threading.Thread(target=waiter)
        thread.start()
        for _ in range(100):  # let the waiter reach the queue
            if broker.queued:
                break
            time.sleep(0.005)
        assert broker.queued == 1
        broker.release()
        thread.join(timeout=5.0)
        assert got_slot.is_set()
        assert broker.inflight == 0

    def test_queue_wait_respects_deadline(self):
        broker = RequestBroker(max_inflight=1, max_queue=4)
        broker.acquire()
        started = time.perf_counter()
        with pytest.raises(DeadlineExceeded):
            broker.acquire(Deadline.after(0.05))
        assert time.perf_counter() - started < 2.0
        assert broker.queued == 0  # the expired waiter left the queue
        broker.release()

    def test_slot_context_manager_releases_on_error(self):
        broker = RequestBroker(max_inflight=1, max_queue=0)
        with pytest.raises(RuntimeError, match="boom"):
            with broker.slot():
                assert broker.inflight == 1
                raise RuntimeError("boom")
        assert broker.inflight == 0

    def test_release_without_acquire_rejected(self):
        with pytest.raises(RuntimeError):
            RequestBroker().release()

    def test_pressure(self):
        broker = RequestBroker(max_inflight=2, max_queue=4)
        assert broker.pressure() == 0.0
        broker.acquire()
        assert broker.pressure() == 0.5
        broker.acquire()
        assert broker.pressure() == 1.0
        broker.release()
        broker.release()


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=10.0, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 6.0
        assert breaker.state == "half_open"
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # probe budget spent
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_failure_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        clock.now = 6.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2
        clock.now = 10.0  # only 4s into the new cooldown
        assert not breaker.allow()
        clock.now = 11.5
        assert breaker.allow()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=-1.0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)


class TestSloTracker:
    def test_availability_counts_degraded_as_usable(self):
        slo = SloTracker()
        for _ in range(8):
            slo.record("ok", 0.01)
        slo.record("degraded", 0.02)
        slo.record("error", 0.03)
        assert slo.total == 10
        assert slo.availability() == pytest.approx(0.9)

    def test_idle_tracker_is_fully_available(self):
        assert SloTracker().availability() == 1.0

    def test_percentiles_are_exact_nearest_rank(self):
        slo = SloTracker()
        for ms in range(1, 101):  # 1..100 ms
            slo.record("ok", ms / 1000.0)
        assert slo.percentile(50.0) == pytest.approx(0.050)
        assert slo.percentile(99.0) == pytest.approx(0.099)
        assert slo.percentile(100.0) == pytest.approx(0.100)

    def test_snapshot_shape(self):
        slo = SloTracker()
        slo.record("ok", 0.01, retries=2, ladder_steps=1, concealed=3)
        snap = slo.snapshot()
        assert snap["requests"] == 1
        assert snap["retries"] == 2
        assert snap["ladder_steps"] == 1
        assert snap["concealed_tiles"] == 3
        assert set(snap["outcomes"]) == set(OUTCOMES)
        assert set(snap["latency_ms"]) == {
            "p50", "p90", "p99", "p999", "max", "mean",
        }

    def test_percentiles_empty_tracker(self):
        slo = SloTracker()
        assert slo.percentile(50.0) == 0.0
        snap = slo.snapshot()
        assert snap["latency_ms"]["p50"] == 0.0
        assert snap["latency_ms"]["p999"] == 0.0

    def test_percentiles_single_sample(self):
        # n=1: every percentile IS the sample.  The old round()-based
        # rank mapped p<50 to rank 0 via clamping but p50 itself relied
        # on banker's rounding (round(0.5) == 0), which happened to
        # work; ceil makes it principled.
        slo = SloTracker()
        slo.record("ok", 0.25)
        for p in (0.0, 1.0, 50.0, 99.0, 99.9, 100.0):
            assert slo.percentile(p) == pytest.approx(0.25)

    def test_percentiles_two_samples(self):
        # n=2: p50 is the lower sample (rank ceil(1)=1), anything
        # above 50% is the upper.  round() got p75 wrong:
        # round(1.5)-1 == 1 by luck, but round(2*0.25)=0 made p25
        # clamp instead of rank.
        slo = SloTracker()
        slo.record("ok", 0.1)
        slo.record("ok", 0.9)
        assert slo.percentile(25.0) == pytest.approx(0.1)
        assert slo.percentile(50.0) == pytest.approx(0.1)
        assert slo.percentile(50.1) == pytest.approx(0.9)
        assert slo.percentile(99.0) == pytest.approx(0.9)

    def test_percentile_banker_rounding_regression(self):
        # n=10, p=25 -> nearest-rank index ceil(2.5)=3 -> 3rd smallest.
        # round(2.5) == 2 (half-to-even) used to return the 2nd.
        slo = SloTracker()
        for ms in range(1, 11):
            slo.record("ok", ms / 1000.0)
        assert slo.percentile(25.0) == pytest.approx(0.003)

    def test_p999_tracks_the_tail(self):
        slo = SloTracker()
        for _ in range(990):
            slo.record("ok", 0.001)
        for _ in range(10):
            slo.record("ok", 5.0)
        snap = slo.snapshot()["latency_ms"]
        assert snap["p99"] == pytest.approx(1.0)
        assert snap["p999"] == pytest.approx(5000.0)

    def test_unknown_outcome_rejected(self):
        with pytest.raises(ValueError):
            SloTracker().record("maybe", 0.01)

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError):
            SloTracker().percentile(101.0)


class TestDegradationLadder:
    def test_default_ladder_order(self):
        assert [r.name for r in DEFAULT_LADDER] == ["turbo", "vectorized", "legacy"]

    def test_unknown_rd_search_rejected(self):
        with pytest.raises(ValueError):
            Rung("bogus", "quantum")

    def test_select_skips_tripped_rung(self):
        clock = FakeClock()
        ladder = DegradationLadder(failure_threshold=1, cooldown_s=60.0, clock=clock)
        index, rung = ladder.select()
        assert (index, rung.name) == (0, "turbo")
        ladder.record(0, False)  # trip turbo
        index, rung = ladder.select()
        assert (index, rung.name) == (1, "vectorized")

    def test_floor_always_serves(self):
        clock = FakeClock()
        ladder = DegradationLadder(failure_threshold=1, cooldown_s=60.0, clock=clock)
        for i in range(len(ladder)):
            ladder.record(i, False)
        index, rung = ladder.select()
        assert rung.name == "legacy"  # served despite an open breaker

    def test_start_for_pressure(self):
        ladder = DegradationLadder()
        assert ladder.start_for_pressure(0.0) == 0
        assert ladder.start_for_pressure(0.99) == 0
        assert ladder.start_for_pressure(1.5) == 1
        assert ladder.start_for_pressure(2.0) == 2
        assert ladder.start_for_pressure(9.0) == len(ladder) - 1

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError):
            DegradationLadder(rungs=())
