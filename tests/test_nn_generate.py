"""Tests for incremental decoding with (compressed) KV caches."""

import numpy as np
import pytest

from repro.models.zoo import load_model
from repro.nn.generate import IncrementalDecoder, generate
from repro.quant.kvcache import rtn_kv_hook


@pytest.fixture(scope="module")
def tiny():
    return load_model("tiny-sim")


class TestIncrementalDecoder:
    def test_matches_full_forward(self, tiny):
        """Token-by-token logits must equal the batch forward pass."""
        model, corpus = tiny
        tokens = corpus.sample(1, seq_len=12, seed=1)[0]
        full = model.forward(tokens[None, :]).data[0]

        decoder = IncrementalDecoder(model)
        incremental = []
        for t in range(len(tokens)):
            incremental.append(decoder.feed(tokens[t : t + 1]))
        incremental = np.stack(incremental)
        assert np.allclose(incremental, full, atol=1e-8)

    def test_prefill_then_steps_match(self, tiny):
        model, corpus = tiny
        tokens = corpus.sample(1, seq_len=10, seed=2)[0]
        full = model.forward(tokens[None, :]).data[0]

        decoder = IncrementalDecoder(model)
        logits_prefill = decoder.feed(tokens[:6])
        assert np.allclose(logits_prefill, full[5], atol=1e-8)
        for t in range(6, 10):
            logits = decoder.feed(tokens[t : t + 1])
            assert np.allclose(logits, full[t], atol=1e-8)

    def test_cache_grows(self, tiny):
        model, corpus = tiny
        decoder = IncrementalDecoder(model)
        decoder.feed(corpus.sample(1, seq_len=5, seed=3)[0])
        assert decoder.cache.seq_len == 5
        assert len(decoder.cache.keys) == len(model.blocks)

    def test_max_length_enforced(self, tiny):
        model, _ = tiny
        decoder = IncrementalDecoder(model)
        too_long = np.zeros(model.config.max_seq_len + 1, dtype=np.int64)
        with pytest.raises(ValueError):
            decoder.feed(too_long)


class TestGenerate:
    def test_greedy_is_deterministic(self, tiny):
        model, corpus = tiny
        prompt = corpus.sample(1, seq_len=6, seed=4)[0]
        a, _ = generate(model, prompt, max_new_tokens=8)
        b, _ = generate(model, prompt, max_new_tokens=8)
        assert np.array_equal(a, b)
        assert len(a) == 14

    def test_sampled_generation_varies_with_seed(self, tiny):
        model, corpus = tiny
        prompt = corpus.sample(1, seq_len=6, seed=5)[0]
        a, _ = generate(model, prompt, 12, temperature=1.5, seed=1)
        b, _ = generate(model, prompt, 12, temperature=1.5, seed=2)
        assert not np.array_equal(a, b)

    def test_tokens_in_vocab(self, tiny):
        model, corpus = tiny
        prompt = corpus.sample(1, seq_len=4, seed=6)[0]
        out, _ = generate(model, prompt, 10, temperature=1.0, seed=3)
        assert out.min() >= 0 and out.max() < model.config.vocab_size

    def test_compressed_cache_generation_stays_close(self, tiny):
        """8-bit KV compression should barely change greedy output."""
        model, corpus = tiny
        prompt = corpus.sample(1, seq_len=8, seed=7)[0]
        clean, _ = generate(model, prompt, 10)
        lossy, cache = generate(
            model, prompt, 10, kv_hook=rtn_kv_hook(8), compress_every=4
        )
        agreement = np.mean(clean == lossy)
        assert agreement > 0.7
        assert cache.seq_len == len(prompt) + 10

    def test_aggressive_cache_compression_changes_output_gracefully(self, tiny):
        model, corpus = tiny
        prompt = corpus.sample(1, seq_len=8, seed=8)[0]
        lossy, _ = generate(
            model, prompt, 10, kv_hook=rtn_kv_hook(2), compress_every=2
        )
        assert len(lossy) == 18  # still generates; quality degrades, not crashes

    def test_cache_bytes_accounting(self, tiny):
        model, corpus = tiny
        _, cache = generate(model, corpus.sample(1, seq_len=4, seed=9)[0], 4)
        expected = (
            len(model.blocks)
            * 2  # K and V
            * model.config.dim
            * cache.seq_len
            * 2  # FP16 bytes
        )
        assert cache.nbytes_fp16() == expected
